package congest

// Fault-injection engine semantics: the WithFaults(nil) A/B guarantee (the
// clean path is byte-identical with and without the option), drop/retry
// budgets, delay pacing, duplication, crash-stop and crash-recover windows,
// partitions, worker-count invariance under an active plan, and the
// Broadcast/Convergecast retry accounting.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"lowmemroute/internal/faults"
	"lowmemroute/internal/graph"
)

// floodResult captures everything observable about a flood workload run.
type floodResult struct {
	rounds, messages, words int64
	peaks                   []int64
	logs                    [][]rcvd
	ctr                     faults.Counters
}

// runFlood executes the worker-invariance flood workload under opts.
func runFlood(workers, floodRounds int, opts ...Option) floodResult {
	g := graph.Torus(8, 8, graph.UnitWeights, rand.New(rand.NewSource(3)))
	s := New(g, append([]Option{WithWorkers(workers)}, opts...)...)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	logs := make([][]rcvd, g.N())
	s.Run(all, 64*floodRounds+64, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			logs[v] = append(logs[v], rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if ctx.Round() < floodRounds {
			for _, nb := range g.Neighbors(v) {
				ctx.Send(nb.To, Payload{W0: IntWord(v*1000 + ctx.Round())}, 1+(v+nb.To+ctx.Round())%7)
			}
			ctx.Wake()
		}
	})
	res := floodResult{rounds: s.Rounds(), messages: s.Messages(), words: s.Words(), logs: logs, ctr: s.FaultCounters()}
	res.peaks = make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		res.peaks[v] = s.Mem(v).Peak()
	}
	return res
}

// TestWithFaultsNilIsIdentical is the no-plan A/B guarantee: constructing
// with WithFaults(nil) — or with an empty plan — leaves every observable
// output equal to a simulator built without the option.
func TestWithFaultsNilIsIdentical(t *testing.T) {
	base := runFlood(4, 5)
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"nil-plan", WithFaults(nil)},
		{"empty-plan", WithFaults(&faults.Plan{})},
		{"seed-only-plan", WithFaults(&faults.Plan{Seed: 9, RetryBudget: 3})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runFlood(4, 5, tc.opt)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("run with %s differs from run without WithFaults", tc.name)
			}
		})
	}
}

// TestFaultWorkerCountInvariance runs a plan with every fault class enabled
// at several worker widths: fault decisions are stateless hashes, so logs,
// counters and meters must be identical regardless of delivery sharding.
func TestFaultWorkerCountInvariance(t *testing.T) {
	plan := &faults.Plan{
		Seed: 11, Drop: 0.2, Delay: 2, Duplicate: 0.1,
		Crashes:    []faults.Crash{{Vertex: 5, From: 3, Until: 9}},
		Partitions: []faults.Partition{{Members: []int{0, 1, 8, 9}, From: 4, Until: 12}},
	}
	base := runFlood(1, 5, WithFaults(plan))
	if !base.ctr.Any() {
		t.Fatal("plan injected no faults; test is vacuous")
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := runFlood(workers, 5, WithFaults(plan))
			if got.ctr != base.ctr {
				t.Fatalf("fault counters differ from workers=1: %+v vs %+v", got.ctr, base.ctr)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatal("observable run state differs from workers=1 under the same fault plan")
			}
		})
	}
}

// TestFaultSameSeedSameRun: equal seeds reproduce the exact fault pattern;
// a different seed produces a different one.
func TestFaultSameSeedSameRun(t *testing.T) {
	mk := func(seed uint64) floodResult {
		return runFlood(4, 5, WithFaults(&faults.Plan{Seed: seed, Drop: 0.2, Delay: 1, Duplicate: 0.1}))
	}
	a, b, c := mk(1), mk(1), mk(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal fault seeds must reproduce identical runs")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different fault seeds produced identical runs (suspicious)")
	}
}

// twoVertexRun sends `count` one-word messages 0→1 and returns the receive
// log and the simulator.
func twoVertexRun(t *testing.T, count, maxRounds int, opts ...Option) ([]rcvd, *Simulator) {
	t.Helper()
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, opts...)
	var log []rcvd
	s.Run([]int{0}, maxRounds, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			log = append(log, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if v == 0 && ctx.Round() == 0 {
			for i := 0; i < count; i++ {
				ctx.Send(1, Payload{W0: uint64(i)}, 1)
			}
		}
	})
	return log, s
}

// TestFaultDropRetriesDeliver: with drop well below certainty and the
// default budget, every message still arrives (in FIFO order), at the cost
// of extra rounds and counted retransmissions.
func TestFaultDropRetriesDeliver(t *testing.T) {
	const count = 40
	clean, _ := twoVertexRun(t, count, 1000)
	faulty, s := twoVertexRun(t, count, 1000, WithFaults(&faults.Plan{Seed: 5, Drop: 0.4}))
	if len(clean) != count || len(faulty) != count {
		t.Fatalf("deliveries: clean %d, faulty %d, want %d", len(clean), len(faulty), count)
	}
	for i := range faulty {
		if faulty[i].Payload.W0 != clean[i].Payload.W0 {
			t.Fatalf("message %d out of order under drops: %v vs %v", i, faulty[i].Payload, clean[i].Payload)
		}
	}
	ctr := s.FaultCounters()
	if ctr.Dropped == 0 || ctr.Retried == 0 {
		t.Fatalf("drop=0.4 over %d messages fired no drops: %+v", count, ctr)
	}
	if ctr.Lost != 0 {
		t.Fatalf("default budget must make loss (p=0.4^9) unobservable here: %+v", ctr)
	}
	if ctr.Dropped != ctr.Retried+ctr.Lost {
		t.Fatalf("counter invariant Dropped == Retried + Lost violated: %+v", ctr)
	}
	if faulty[len(faulty)-1].Round <= clean[len(clean)-1].Round {
		t.Fatal("retransmissions must delay completion")
	}
}

// TestFaultDropBudgetExhaustion: with certain drop and no retries, every
// message is Lost and nothing is delivered.
func TestFaultDropBudgetExhaustion(t *testing.T) {
	log, s := twoVertexRun(t, 10, 1000, WithFaults(&faults.Plan{Drop: 1, RetryBudget: -1}))
	if len(log) != 0 {
		t.Fatalf("drop=1 with no retries delivered %d messages", len(log))
	}
	ctr := s.FaultCounters()
	if ctr.Lost != 10 || ctr.Retried != 0 || ctr.Dropped != 10 {
		t.Fatalf("counters = %+v, want 10 lost, 10 dropped, 0 retried", ctr)
	}

	log, s = twoVertexRun(t, 10, 1000, WithFaults(&faults.Plan{Drop: 1, RetryBudget: 2}))
	if len(log) != 0 {
		t.Fatalf("drop=1 delivered %d messages", len(log))
	}
	ctr = s.FaultCounters()
	if ctr.Lost != 10 || ctr.Retried != 20 || ctr.Dropped != 30 {
		t.Fatalf("counters = %+v, want lost 10, retried 20, dropped 30", ctr)
	}
}

// TestFaultDelay: a single message with Delay=d arrives exactly DelayRounds
// later than clean, FIFO order preserved.
func TestFaultDelay(t *testing.T) {
	const count = 20
	clean, _ := twoVertexRun(t, count, 1000)
	faulty, s := twoVertexRun(t, count, 1000, WithFaults(&faults.Plan{Seed: 3, Delay: 4}))
	ctr := s.FaultCounters()
	if ctr.DelayRounds == 0 {
		t.Fatal("delay=4 over 20 messages injected no delay")
	}
	if len(faulty) != count {
		t.Fatalf("delivered %d, want %d", len(faulty), count)
	}
	for i := range faulty {
		if faulty[i].Payload.W0 != clean[i].Payload.W0 {
			t.Fatalf("message %d out of order under delays", i)
		}
	}
	// Head-of-line delays push completion later, but a delay round consumed
	// while the batch budget was already spent overlaps with normal pacing,
	// so the shift is bounded by — not equal to — the injected total.
	last, cleanLast := faulty[count-1].Round, clean[count-1].Round
	if last <= cleanLast || last > cleanLast+int(ctr.DelayRounds) {
		t.Fatalf("last delivery at round %d, want in (%d, %d]",
			last, cleanLast, cleanLast+int(ctr.DelayRounds))
	}
}

// TestFaultDelayExactSingleMessage: with one message on an idle edge there
// is nothing to overlap with, so the arrival shifts by exactly the rolled
// delay.
func TestFaultDelayExactSingleMessage(t *testing.T) {
	clean, _ := twoVertexRun(t, 1, 1000)
	faulty, s := twoVertexRun(t, 1, 1000, WithFaults(&faults.Plan{Seed: 1, Delay: 6}))
	ctr := s.FaultCounters()
	if len(clean) != 1 || len(faulty) != 1 {
		t.Fatalf("deliveries: clean %d, faulty %d, want 1 each", len(clean), len(faulty))
	}
	if want := clean[0].Round + int(ctr.DelayRounds); faulty[0].Round != want {
		t.Fatalf("arrival at round %d, want %d (clean %d + rolled delay %d)",
			faulty[0].Round, want, clean[0].Round, ctr.DelayRounds)
	}
}

// TestFaultDuplicate: certain duplication delivers every message exactly
// twice, back to back; handlers see both copies.
func TestFaultDuplicate(t *testing.T) {
	const count = 5
	log, s := twoVertexRun(t, count, 1000, WithFaults(&faults.Plan{Duplicate: 1}))
	if len(log) != 2*count {
		t.Fatalf("delivered %d messages, want %d (every one duplicated)", len(log), 2*count)
	}
	for i := 0; i < count; i++ {
		if log[2*i].Payload.W0 != log[2*i+1].Payload.W0 {
			t.Fatalf("duplicate %d not adjacent to original", i)
		}
	}
	if ctr := s.FaultCounters(); ctr.Duplicated != count {
		t.Fatalf("Duplicated = %d, want %d", ctr.Duplicated, count)
	}
	if s.Messages() != 2*count {
		t.Fatalf("global message counter %d, want %d", s.Messages(), 2*count)
	}
}

// TestFaultDuplicateExt: duplicated Ext payloads must ride distinct arena
// chunks (each is recycled exactly once) and carry equal contents.
func TestFaultDuplicateExt(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithFaults(&faults.Plan{Duplicate: 1}), WithEdgeCapacity(0))
	var got [][]uint64
	s.Run([]int{0}, 100, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			ext := ctx.Ext(3)
			ext[0], ext[1], ext[2] = 7, 8, 9
			ctx.Send(1, Payload{Kind: 1, Ext: ext}, 4)
		}
		for _, m := range ctx.In() {
			got = append(got, append([]uint64(nil), m.Payload.Ext...))
		}
	})
	if len(got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(got))
	}
	want := []uint64{7, 8, 9}
	for i, ext := range got {
		if !reflect.DeepEqual(ext, want) {
			t.Fatalf("copy %d Ext = %v, want %v", i, ext, want)
		}
	}
}

// TestFaultCrashForever: a permanently crashed vertex never executes, and
// traffic to it is discarded (no spin until maxRounds).
func TestFaultCrashForever(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithFaults(&faults.Plan{Crashes: []faults.Crash{{Vertex: 1}}}))
	stepped := make([]int, 3)
	executed := s.Run([]int{0, 1, 2}, 1000, func(v int, ctx *Ctx) {
		stepped[v]++
		if ctx.Round() == 0 {
			for _, nb := range g.Neighbors(v) {
				ctx.Send(nb.To, Payload{W0: IntWord(v)}, 1)
			}
		}
	})
	if stepped[1] != 0 {
		t.Fatalf("crashed vertex executed %d times", stepped[1])
	}
	if stepped[0] == 0 || stepped[2] == 0 {
		t.Fatal("live vertices must execute")
	}
	if executed >= 1000 {
		t.Fatal("run spun to maxRounds: traffic to a forever-crashed vertex must be discarded")
	}
	if ctr := s.FaultCounters(); ctr.Discarded != 2 {
		t.Fatalf("Discarded = %d, want 2 (one message from each neighbor)", ctr.Discarded)
	}
}

// TestFaultCrashRecover: traffic to a vertex in a finite crash window is
// held, not lost, and delivered after recovery.
func TestFaultCrashRecover(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	// Vertex 1 is down for global rounds [1, 6): the message sent in round 0
	// (arriving at round 1) must wait for recovery.
	s := New(g, WithFaults(&faults.Plan{Crashes: []faults.Crash{{Vertex: 1, From: 1, Until: 6}}}))
	var log []rcvd
	s.Run([]int{0}, 1000, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			log = append(log, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if v == 0 && ctx.Round() == 0 {
			ctx.Send(1, Payload{W0: 42}, 1)
		}
	})
	if len(log) != 1 {
		t.Fatalf("delivered %d messages, want 1 (held through the crash window)", len(log))
	}
	if log[0].Round != 6 {
		t.Fatalf("held message arrived at round %d, want 6 (first round after recovery)", log[0].Round)
	}
	if ctr := s.FaultCounters(); ctr.Discarded != 0 || ctr.Lost != 0 {
		t.Fatalf("finite crash window must not lose messages: %+v", ctr)
	}
}

// TestFaultPartition: a permanent partition discards cross-boundary traffic
// but leaves same-side traffic untouched.
func TestFaultPartition(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights, rand.New(rand.NewSource(1))) // 0-1-2
	s := New(g, WithFaults(&faults.Plan{Partitions: []faults.Partition{{Members: []int{0}}}}))
	var log []rcvd
	s.Run([]int{0, 1}, 1000, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			log = append(log, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if ctx.Round() == 0 {
			for _, nb := range g.Neighbors(v) {
				ctx.Send(nb.To, Payload{W0: IntWord(v)}, 1)
			}
		}
	})
	// 0→1 and 1→0 cross the cut and are discarded; 1→2 survives.
	if len(log) != 1 || log[0].From != 1 {
		t.Fatalf("deliveries = %+v, want exactly the same-side message 1→2", log)
	}
	if ctr := s.FaultCounters(); ctr.Discarded != 2 {
		t.Fatalf("Discarded = %d, want 2", ctr.Discarded)
	}
}

// TestFaultPartitionHeals: a finite partition window holds traffic and
// releases it when the window closes.
func TestFaultPartitionHeals(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithFaults(&faults.Plan{Partitions: []faults.Partition{{Members: []int{0}, From: 0, Until: 4}}}))
	var log []rcvd
	s.Run([]int{0}, 1000, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			log = append(log, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if v == 0 && ctx.Round() == 0 {
			ctx.Send(1, Payload{W0: 7}, 1)
		}
	})
	if len(log) != 1 {
		t.Fatalf("delivered %d messages, want 1 after the partition heals", len(log))
	}
	if log[0].Round != 4 {
		t.Fatalf("delivery at round %d, want 4 (first round past the window)", log[0].Round)
	}
}

// TestBroadcastFaultRetry: broadcast deliveries retry within the budget (all
// handlers still run, extra rounds and wire charged); with certain drop and
// a tiny budget, deliveries are Lost and the handler is skipped.
func TestBroadcastFaultRetry(t *testing.T) {
	g := graph.Torus(4, 4, graph.UnitWeights, rand.New(rand.NewSource(2)))

	clean := New(g)
	var cleanCalls int
	clean.Broadcast([]BroadcastMsg{{Origin: 0, Words: 2}, {Origin: 3, Words: 2}},
		func(v int, m *BroadcastMsg) { cleanCalls++ })

	s := New(g, WithFaults(&faults.Plan{Seed: 8, Drop: 0.3}))
	var calls int
	s.Broadcast([]BroadcastMsg{{Origin: 0, Words: 2}, {Origin: 3, Words: 2}},
		func(v int, m *BroadcastMsg) { calls++ })
	if calls != cleanCalls {
		t.Fatalf("faulty broadcast ran %d handlers, clean ran %d", calls, cleanCalls)
	}
	ctr := s.FaultCounters()
	if ctr.Dropped == 0 || ctr.Retried != ctr.Dropped {
		t.Fatalf("drop=0.3 broadcast: %+v (want drops, all retried)", ctr)
	}
	if s.Rounds() <= clean.Rounds() {
		t.Fatalf("faulty broadcast rounds %d not above clean %d", s.Rounds(), clean.Rounds())
	}
	if s.Messages() <= clean.Messages() {
		t.Fatalf("faulty broadcast messages %d not above clean %d", s.Messages(), clean.Messages())
	}

	s = New(g, WithFaults(&faults.Plan{Drop: 1, RetryBudget: 1}))
	calls = 0
	s.Broadcast([]BroadcastMsg{{Origin: 0, Words: 2}}, func(v int, m *BroadcastMsg) { calls++ })
	if calls != 1 {
		t.Fatalf("drop=1 broadcast ran %d handlers, want 1 (only the origin's own copy)", calls)
	}
	if ctr := s.FaultCounters(); ctr.Lost != int64(g.N()-1) {
		t.Fatalf("Lost = %d, want %d", ctr.Lost, g.N()-1)
	}
}

// TestConvergecastFaultRetry mirrors the broadcast test for the sink side.
func TestConvergecastFaultRetry(t *testing.T) {
	g := graph.Torus(4, 4, graph.UnitWeights, rand.New(rand.NewSource(2)))
	msgs := make([]BroadcastMsg, g.N())
	for v := range msgs {
		msgs[v] = BroadcastMsg{Origin: v, Words: 1}
	}

	s := New(g, WithFaults(&faults.Plan{Seed: 4, Drop: 0.3}))
	var got int
	s.Convergecast(0, msgs, func(m *BroadcastMsg) { got++ })
	if got != g.N() {
		t.Fatalf("sink learned %d messages, want %d", got, g.N())
	}
	if ctr := s.FaultCounters(); ctr.Dropped == 0 || ctr.Lost != 0 {
		t.Fatalf("drop=0.3 convergecast: %+v", ctr)
	}

	// Crashed sink learns nothing.
	s = New(g, WithFaults(&faults.Plan{Crashes: []faults.Crash{{Vertex: 0}}}))
	got = 0
	s.Convergecast(0, msgs, func(m *BroadcastMsg) { got++ })
	if got != 0 {
		t.Fatalf("crashed sink learned %d messages", got)
	}
	if ctr := s.FaultCounters(); ctr.Discarded != int64(g.N()) {
		t.Fatalf("Discarded = %d, want %d", ctr.Discarded, g.N())
	}
}
