package congest

// The round engine. Design goals, in order: bit-identical behaviour with the
// reference semantics (per-edge FIFO, per-round edge bandwidth, inboxes
// sorted by (sender, send order), deterministic active sets), zero
// steady-state allocation, and parallel delivery that cannot race.
//
// Topology is compiled once per graph shape into a CSR (compressed sparse
// row) index over the *directed* edges of the communication graph:
//
//   outStart/outTo  per-sender edge lists, destinations ascending, parallel
//                   edges deduplicated (they share one queue and therefore
//                   one bandwidth budget, exactly like the map-keyed queues
//                   they replace);
//   inStart/inEdges per-destination lists of incoming directed edge ids,
//                   senders ascending;
//   inPos           edge id -> its slot in inEdges.
//
// Every per-round structure (contexts, send buffers, inboxes, queues, the
// dirty-destination worklists, the next-active list) is owned by the
// Simulator and recycled across rounds; set membership is tracked with an
// epoch-stamped array instead of maps, so a steady-state round performs no
// allocation and no hashing.
//
// Determinism does not depend on processing order: message delivery into
// inbox[v] walks v's incoming edges in ascending-sender CSR order (giving
// the (From, seq) inbox order directly, with no post-sort), counters are
// sums, and the next-active list is sorted once per round. Delivery is
// therefore safe to shard across the worker pool by destination vertex:
// a shard owns a contiguous destination range, hence its inboxes, queue
// heads and dirty lists are touched by exactly one goroutine, and the
// result is independent of the shard count (worker-count invariance is
// enforced by TestRunWorkerCountInvariance and the core trace test).

import (
	"fmt"
	"slices"
	"sync"

	"lowmemroute/internal/faults"
	"lowmemroute/internal/trace"
)

// serialThreshold is the minimum amount of per-round work (active vertices
// for the step phase, dirty destinations for the delivery phase) before the
// engine bothers spawning the worker pool.
const serialThreshold = 64

// queueCompactMin is the consumed-prefix length beyond which a partially
// drained edge queue is compacted in place (bounding the backing array of a
// perpetually backlogged edge).
const queueCompactMin = 32

// edgeQueue models the pacing of a bandwidth-limited directed edge as a
// FIFO with a consumed prefix. Backlog delays delivery (rounds) but does not
// charge the sender's memory: a real CONGEST processor regenerates outgoing
// messages from its stored state (already charged) rather than holding
// per-edge copies.
// Queue cursors are int32: a directed edge never queues more than 2^31
// messages, and at scale the 8 bytes saved per edge are real — the queue
// array is the engine's largest O(m) structure. The msgs backing array is
// nil until the edge first carries traffic and is compacted back to its
// live suffix, so steady-state footprint is O(m + in-flight), not
// O(m · capacity).
type edgeQueue struct {
	msgs []Message
	head int32 // msgs[:head] already delivered; cleared lazily
	// sent is the number of words of msgs[head] already transmitted in
	// previous rounds (large messages take several rounds to cross).
	sent int32
}

// edgeFaultState is the per-edge-queue fault bookkeeping, kept out of
// edgeQueue and allocated as a parallel slice only when a fault plan is
// installed, so the clean simulator's topology footprint is untouched. seq
// is the lifetime delivery sequence number of the head message — the
// deterministic coordinate of its fault rolls. attempt counts this
// message's failed transmissions, hold its remaining injected delay rounds,
// and rolled whether the delay has been drawn yet.
type edgeFaultState struct {
	seq     uint64
	attempt int32
	hold    int32
	rolled  bool
}

func (q *edgeQueue) empty() bool { return int(q.head) == len(q.msgs) }

// compact releases delivered messages: full resets are free, and a long
// consumed prefix under a persistent backlog is copied out so the backing
// array stays proportional to the live queue.
func (q *edgeQueue) compact() {
	switch {
	case int(q.head) == len(q.msgs):
		q.msgs = q.msgs[:0]
		q.head = 0
	case q.head >= queueCompactMin && 2*int(q.head) >= len(q.msgs):
		n := copy(q.msgs, q.msgs[q.head:])
		clear(q.msgs[n:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
}

// ensureTopology (re)compiles the CSR edge index and sizes every recycled
// buffer. It runs on the first Run and again only if the graph changed
// shape; steady-state Runs see a single integer comparison.
func (s *Simulator) ensureTopology() {
	var n, m int
	if s.g != nil {
		n, m = s.g.N(), s.g.M()
	} else {
		n, m = s.topo.N(), s.topo.M()
	}
	if s.topoN == n && s.topoM == m && s.outStart != nil {
		return
	}
	s.topoN, s.topoM = n, m

	// Outgoing CSR: destinations sorted ascending per sender, parallel
	// edges deduplicated so they share one queue (and one budget).
	s.outStart = make([]int32, n+1)
	outTo := make([]int32, 0, 2*m)
	for u := 0; u < n; u++ {
		start := len(outTo)
		if s.g != nil {
			for _, nb := range s.g.Neighbors(u) {
				outTo = append(outTo, int32(nb.To))
			}
		} else {
			ts, _ := s.topo.NeighborRange(u)
			outTo = append(outTo, ts...)
		}
		seg := outTo[start:]
		slices.Sort(seg)
		w := 0
		for i, to := range seg {
			if i == 0 || to != seg[w-1] {
				seg[w] = to
				w++
			}
		}
		outTo = outTo[:start+w]
		s.outStart[u+1] = int32(len(outTo))
	}
	s.outTo = outTo
	ne := len(outTo)

	// Incoming CSR: for each destination, the incoming directed edge ids
	// in ascending-sender order (edge ids ascend with their sender, so a
	// counting pass in id order lands them presorted).
	s.inStart = make([]int32, n+1)
	for _, to := range outTo {
		s.inStart[to+1]++
	}
	for v := 0; v < n; v++ {
		s.inStart[v+1] += s.inStart[v]
	}
	s.inEdges = make([]int32, ne)
	s.inPos = make([]int32, ne)
	cursor := make([]int32, n)
	copy(cursor, s.inStart[:n])
	for e := 0; e < ne; e++ {
		to := outTo[e]
		p := cursor[to]
		cursor[to] = p + 1
		s.inEdges[p] = int32(e)
		s.inPos[e] = p
	}

	s.queues = make([]edgeQueue, ne)
	s.dirtyIn = make([]int32, ne)
	s.dirtyCnt = make([]int32, n)
	s.nextStamp = make([]int64, n)
	s.inboxMax = make([]int32, n)
	s.epoch = 0

	shards := s.workers
	if shards < 1 {
		shards = 1
	}
	s.shardBlock = (n + shards - 1) / shards
	if s.shardBlock < 1 {
		s.shardBlock = 1
	}
	s.shardCur = make([][]int32, shards)
	s.shardNxt = make([][]int32, shards)
	s.shardRecv = make([][]int32, shards)
	s.shardMsgs = make([]int64, shards)
	s.shardWords = make([]int64, shards)
	s.shardArena = make([]wordArena, shards)

	// A graph that grew since New needs wider inboxes and meters; existing
	// meter readings are preserved.
	for len(s.inbox) < n {
		s.inbox = append(s.inbox, nil)
	}
	for len(s.meters) < n {
		s.meters = append(s.meters, Meter{})
	}
}

// edgeID returns the directed-edge id of from->to, or -1 if the vertices are
// not adjacent. Binary search over the sender's sorted CSR destinations.
func (s *Simulator) edgeID(from, to int) int32 {
	lo, hi := s.outStart[from], s.outStart[from+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.outTo[mid]) < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.outStart[from+1] && int(s.outTo[lo]) == to {
		return lo
	}
	return -1
}

// Run executes synchronous rounds. Vertices listed in initial are active in
// round 0; afterwards a vertex is active iff it received a message or called
// Wake. Run stops when no vertex is active and all edge queues are drained,
// or after maxRounds rounds; it returns the number of rounds executed (also
// added to the simulator's round counter).
func (s *Simulator) Run(initial []int, maxRounds int, step StepFunc) int {
	s.ensureTopology()
	s.ensureFaults()

	start := 0
	if s.resumePending {
		// Continuing a restored mid-Run checkpoint: the active list,
		// inboxes, edge queues and dirty worklists are already in place
		// (restoreEngineCkpt), so initial is ignored and execution picks up
		// at the recorded round. The epoch bump keeps the stamp array's
		// semantics identical to the uninterrupted run.
		s.resumePending = false
		start = s.resumeRound
		s.epoch++
	} else {
		// Deduplicated, sorted initial active list in the recycled buffer.
		s.epoch++
		act := s.actList[:0]
		for _, v := range initial {
			if s.nextStamp[v] != s.epoch {
				s.nextStamp[v] = s.epoch
				act = append(act, int32(v))
			}
		}
		slices.Sort(act)
		s.actList = act
	}

	pending := 0 // dirty destinations == destinations with queued traffic
	for _, l := range s.shardCur {
		pending += len(l)
	}

	executed := start
	baseRounds := s.rounds
	s.faultBase = baseRounds
	for round := start; round < maxRounds && (len(s.actList) > 0 || pending > 0); round++ {
		// Idle-round fast-forward: with no vertex active, rounds until the
		// next delivery only tick bandwidth budgets. Jump straight there -
		// the rounds counter advances exactly as if each empty round ran
		// (the metric is exact-gated), only the wall-clock work is skipped.
		// Tracing emits one sample per simulated round, so a traced run
		// executes literally; fault plans make empty rounds meaningful
		// (delays tick, crash windows open and close), so they also run
		// literally.
		if len(s.actList) == 0 && pending > 0 && s.capacity > 0 && !s.ffOff && s.tracer == nil && s.faults == nil {
			if jump := s.fastForward(maxRounds - 1 - round); jump > 0 {
				round += jump
				executed += jump
			}
		}

		msgsBefore, wordsBefore := s.messages, s.words
		ctrBefore := s.faultCtr
		s.runRound(round, step)
		executed++

		// Ran vertices have consumed their inboxes; harvest the arena
		// chunks and recycle the buffers. recycleExt nils every Ext, so
		// truncating is enough - no delivered payload outlives the round.
		for _, v := range s.actList {
			in := s.inbox[v]
			s.recycleExt(in)
			s.inbox[v] = in[:0]
		}

		// Register this round's sends (messages are already on their edge
		// queues, appended by Ctx.Send) and collect wake requests, in
		// sender order. Serial: dirty lists and shard worklists are shared
		// across senders.
		s.epoch++
		next := s.nextList[:0]
		for i := range s.actList {
			c := &s.ctxs[i]
			if c.wake && s.nextStamp[c.v] != s.epoch {
				s.nextStamp[c.v] = s.epoch
				next = append(next, int32(c.v))
			}
			for _, e := range c.outEdge {
				to := int(s.outTo[e])
				if s.dirtyCnt[to] == 0 {
					sh := to / s.shardBlock
					s.shardCur[sh] = append(s.shardCur[sh], int32(to))
					pending++
				}
				s.dirtyIn[int(s.inStart[to])+int(s.dirtyCnt[to])] = s.inPos[e]
				s.dirtyCnt[to]++
			}
			c.outEdge = c.outEdge[:0]
		}

		// Deliver within bandwidth, sharded by destination: every shard
		// owns a disjoint set of inboxes, queues and dirty lists.
		// Deliveries made now are processed next round; fault windows are
		// evaluated against that arrival round.
		s.faultClock = baseRounds + int64(round) + 1
		if s.workers > 1 && pending >= serialThreshold {
			var wg sync.WaitGroup
			for sh := range s.shardCur {
				if len(s.shardCur[sh]) == 0 {
					s.deliverShard(sh)
					continue
				}
				wg.Add(1)
				go func(sh int) {
					defer wg.Done()
					s.deliverShard(sh)
				}(sh)
			}
			wg.Wait()
		} else {
			for sh := range s.shardCur {
				s.deliverShard(sh)
			}
		}

		// Aggregate the shard results (sums and list concatenations are
		// order-independent; next is sorted below) and swap in the
		// carried-backlog worklists for the next round.
		pending = 0
		for sh := range s.shardCur {
			s.messages += s.shardMsgs[sh]
			s.words += s.shardWords[sh]
			next = append(next, s.shardRecv[sh]...)
			s.shardCur[sh], s.shardNxt[sh] = s.shardNxt[sh], s.shardCur[sh][:0]
			pending += len(s.shardCur[sh])
		}

		// Merge the shards' fault tallies and apply their deferred sender
		// spikes (sums and max-tracking spikes are order-independent, so
		// the merge order cannot affect determinism). Dropped transmissions
		// consumed wire bandwidth: charge them to the global counters so
		// the paper's message bounds are measured under faults too.
		if s.faults != nil {
			for sh := range s.shardFault {
				s.faultCtr.Add(s.shardFault[sh])
				s.shardFault[sh] = faults.Counters{}
				for _, sp := range s.shardSpike[sh] {
					s.meters[sp.V].Spike(int64(sp.Words))
				}
				s.shardSpike[sh] = s.shardSpike[sh][:0]
			}
			fd := s.faultCtr.Delta(ctrBefore)
			s.messages += fd.Dropped
			s.words += fd.RetryWords
		}

		if s.tracer != nil {
			s.emitSample(baseRounds+int64(executed), trace.KindRound, 1,
				len(s.actList), s.messages-msgsBefore, s.words-wordsBefore,
				s.faultCtr.Delta(ctrBefore))
		}

		if s.obs != nil {
			s.obsSync(baseRounds+int64(executed), s.messages, s.words)
			s.obs.queueDepth.Set(int64(pending))
			s.obs.active.Set(int64(len(s.actList)))
		}

		// Next round's active list: woken + received, sorted ascending.
		slices.Sort(next)
		s.nextList = next
		s.actList, s.nextList = s.nextList, s.actList

		// Mid-Run checkpoint hook: the state here — next round's active
		// list, its delivered inboxes, the carried backlog — is exactly a
		// round boundary, the point restoreEngineCkpt rebuilds.
		if s.ckpt != nil {
			s.ckpt.maybeWriteMid(executed)
		}
	}
	s.rounds += int64(executed)

	// Drop undelivered state if we hit maxRounds.
	for _, v := range s.actList {
		in := s.inbox[v]
		s.recycleExt(in)
		s.inbox[v] = in[:0]
		s.inboxMax[v] = 0
	}
	if pending > 0 {
		s.drainAll()
	}
	s.obsRunEnd()
	return executed
}

// runRound executes step for every active vertex, reusing the simulator's
// context pool, serially or on the worker pool.
func (s *Simulator) runRound(round int, step StepFunc) {
	act := s.actList
	if len(act) > len(s.ctxs) {
		s.ctxs = append(s.ctxs, make([]Ctx, len(act)-len(s.ctxs))...)
	}
	if s.workers <= 1 || len(act) < serialThreshold {
		for i := range act {
			s.stepVertex(i, round, step, &s.arena)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(act) + s.workers - 1) / s.workers
	for w := 0; w < s.workers; w++ {
		lo := w * chunk
		if lo >= len(act) {
			break
		}
		hi := lo + chunk
		if hi > len(act) {
			hi = len(act)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ar := &s.shardArena[w]
			for i := lo; i < hi; i++ {
				s.stepVertex(i, round, step, ar)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// stepVertex runs one vertex's program for one round in its recycled
// context slot. ar is the executing shard's payload arena.
func (s *Simulator) stepVertex(i, round int, step StepFunc, ar *wordArena) {
	v := int(s.actList[i])
	c := &s.ctxs[i]
	c.sim, c.v, c.round = s, v, round
	c.arena = ar
	c.in = s.inbox[v]
	c.outEdge = c.outEdge[:0]
	c.wake = false
	// Crash-stop: a down vertex executes nothing and sends nothing. The
	// context fields above are still initialised because the serial enqueue
	// walk reads wake/outEdge for every active slot. Delivery to a down
	// vertex is held upstream (drainDstFaulty), so its inbox is empty
	// except in the round its crash window opens — those messages are
	// wiped with the crash.
	if s.faults != nil && s.faults.HasCrashes() {
		if down, _ := s.faults.Crashed(v, s.faultBase+int64(round)); down {
			s.inboxMax[v] = 0
			return
		}
	}
	// Link buffers are free; charge only the single largest in-flight
	// message as transient working space. The maximum is maintained at
	// delivery time (drainDst), so no inbox rescan here.
	s.meters[v].Spike(int64(s.inboxMax[v]))
	s.inboxMax[v] = 0
	step(v, c)
}

// deliverShard drains the dirty destinations of one shard: for each, its
// backlogged incoming edges in ascending-sender order, each within the edge's
// per-round word budget. Everything written here - inboxes, queues, dirty
// lists, stamps, and the shard's own result slots - is owned by this shard's
// destination range, so shards never contend.
func (s *Simulator) deliverShard(sh int) {
	var msgs, words int64
	recv := s.shardRecv[sh][:0]
	nxt := s.shardNxt[sh][:0]
	for _, v32 := range s.shardCur[sh] {
		v := int(v32)
		var dm, dw int64
		if s.faults != nil {
			dm, dw = s.drainDstFaulty(v, sh)
		} else {
			dm, dw = s.drainDst(v)
		}
		msgs += dm
		words += dw
		if dm > 0 && s.nextStamp[v] != s.epoch {
			s.nextStamp[v] = s.epoch
			recv = append(recv, v32)
		}
		if s.dirtyCnt[v] > 0 {
			nxt = append(nxt, v32)
		}
	}
	s.shardRecv[sh] = recv
	s.shardNxt[sh] = nxt
	s.shardMsgs[sh] = msgs
	s.shardWords[sh] = words
}

// drainDst delivers into destination v from each of its backlogged incoming
// edges, in ascending-sender order, within each edge's bandwidth. Surviving
// backlog is compacted to the front of v's dirty region. Returns delivered
// message and word counts.
func (s *Simulator) drainDst(v int) (int64, int64) {
	var msgs, words int64
	region := s.dirtyIn[s.inStart[v] : int(s.inStart[v])+int(s.dirtyCnt[v])]
	// Carried entries (compacted last round) and this round's arrivals are
	// each already ascending, so this is a near-linear merge for pdqsort.
	slices.Sort(region)
	unlimited := s.capacity <= 0
	live := 0
	inb := s.inbox[v]
	inbMax := int64(s.inboxMax[v])
	for _, p := range region {
		q := &s.queues[s.inEdges[p]]
		budget := s.capacity
		for int(q.head) < len(q.msgs) {
			m := &q.msgs[q.head]
			if !unlimited {
				if budget <= 0 {
					break
				}
				if remaining := m.Words - int(q.sent); remaining > budget {
					q.sent += int32(budget)
					budget = 0
					break
				} else {
					budget -= remaining
				}
			}
			w := int64(m.Words)
			inb = append(inb, *m)
			// The inbox owns the arena chunk now; scalar words may go
			// stale in the slot (Ext is the only pointer in a Message).
			m.Payload.Ext = nil
			q.head++
			q.sent = 0
			if w > inbMax {
				inbMax = w
			}
			msgs++
			words += w
		}
		q.compact()
		if !q.empty() {
			region[live] = p
			live++
		}
	}
	s.inbox[v] = inb
	s.inboxMax[v] = int32(inbMax)
	s.dirtyCnt[v] = int32(live)
	return msgs, words
}

// drainDstFaulty is drainDst with the fault plan consulted per delivery. It
// preserves the clean path's structure exactly — same ascending-sender edge
// order, same bandwidth pacing, same inbox/dirty bookkeeping — and adds, in
// order: crash holds/discards for the destination, partition cuts per edge,
// a per-message delay draw, a per-transmission drop roll with a bounded
// retransmission budget, and a per-delivery duplication roll. All decisions
// are stateless hashes keyed on the edge id and the queue's lifetime
// sequence number, so they are identical at every worker count. Tallies and
// sender-meter spikes accumulate into this shard's slots and are merged
// serially after the delivery barrier.
func (s *Simulator) drainDstFaulty(v, sh int) (int64, int64) {
	f := s.faults
	clock := s.faultClock
	ctr := &s.shardFault[sh]
	ar := &s.shardArena[sh]
	base := int(s.inStart[v])
	region := s.dirtyIn[base : base+int(s.dirtyCnt[v])]
	slices.Sort(region)
	if down, forever := f.Crashed(v, clock); down {
		if !forever {
			return 0, 0 // held: the backlog carries until v recovers
		}
		for _, p := range region {
			ctr.Discarded += s.discardQueue(s.inEdges[p])
		}
		s.dirtyCnt[v] = 0
		return 0, 0
	}
	var msgs, words int64
	unlimited := s.capacity <= 0
	live := 0
	inb := s.inbox[v]
	inbMax := int64(s.inboxMax[v])
	for _, p := range region {
		e := s.inEdges[p]
		q := &s.queues[e]
		fq := &s.faultQ[e]
		if cut, forever := f.CutPair(q.msgs[q.head].From, v, clock); cut {
			if forever {
				ctr.Discarded += s.discardQueue(e)
				continue
			}
			region[live] = p
			live++
			continue
		}
		budget := s.capacity
		for int(q.head) < len(q.msgs) {
			m := &q.msgs[q.head]
			if !fq.rolled {
				fq.rolled = true
				d := f.DelayRoll(e, fq.seq)
				fq.hold = int32(d)
				ctr.DelayRounds += int64(d)
			}
			if fq.hold > 0 {
				fq.hold-- // head-of-line blocked: one delay round elapses
				break
			}
			if !unlimited {
				if budget <= 0 {
					break
				}
				if remaining := m.Words - int(q.sent); remaining > budget {
					q.sent += int32(budget)
					budget = 0
					break
				} else {
					budget -= remaining
				}
			}
			// The message would complete this round: roll its drop.
			if f.DropRoll(e, fq.seq, int(fq.attempt)) {
				ctr.Dropped++
				ctr.RetryWords += int64(m.Words)
				q.sent = 0
				if int(fq.attempt) >= f.Budget() {
					ctr.Lost++
					if m.Payload.Ext != nil {
						ar.put(m.Payload.Ext)
						m.Payload.Ext = nil
					}
					q.head++
					fq.attempt, fq.hold, fq.rolled = 0, 0, false
					fq.seq++
					continue
				}
				// The sender regenerates and re-queues the message: spike
				// its meter (deferred — the sender belongs to another
				// shard) and let the retransmission occupy the following
				// rounds.
				ctr.Retried++
				s.shardSpike[sh] = append(s.shardSpike[sh],
					faults.Spike{V: int32(m.From), Words: int32(m.Words)})
				fq.attempt++
				break
			}
			w := int64(m.Words)
			inb = append(inb, *m)
			if f.DupRoll(e, fq.seq) {
				// Deliver a second copy. Its Ext must be a fresh arena
				// chunk: inbox recycling frees each Ext exactly once.
				dup := *m
				dup.Payload.Ext = ar.clone(m.Payload.Ext)
				inb = append(inb, dup)
				ctr.Duplicated++
				msgs++
				words += w
			}
			m.Payload.Ext = nil
			q.head++
			q.sent = 0
			fq.attempt, fq.hold, fq.rolled = 0, 0, false
			fq.seq++
			if w > inbMax {
				inbMax = w
			}
			msgs++
			words += w
		}
		q.compact()
		if !q.empty() {
			region[live] = p
			live++
		}
	}
	s.inbox[v] = inb
	s.inboxMax[v] = int32(inbMax)
	s.dirtyCnt[v] = int32(live)
	return msgs, words
}

// discardQueue drops every undelivered message of edge e's queue
// (crashed-forever destination or permanent partition), returning the count.
// Arena chunks are reclaimed; the put side of the arena is mutex-guarded, so
// this is safe from inside a delivery shard.
func (s *Simulator) discardQueue(e int32) int64 {
	q := &s.queues[e]
	fq := &s.faultQ[e]
	dropped := int64(len(q.msgs) - int(q.head))
	s.recycleExt(q.msgs[q.head:])
	clear(q.msgs)
	q.msgs = q.msgs[:0]
	q.head, q.sent = 0, 0
	fq.seq += uint64(dropped)
	fq.attempt, fq.hold, fq.rolled = 0, 0, false
	return dropped
}

// drainAll resets every backlogged queue and dirty list - the end-of-Run
// "drop undelivered state" path when maxRounds cut the simulation short.
func (s *Simulator) drainAll() {
	for sh := range s.shardCur {
		for _, v32 := range s.shardCur[sh] {
			v := int(v32)
			base := int(s.inStart[v])
			for i := 0; i < int(s.dirtyCnt[v]); i++ {
				e := s.inEdges[s.dirtyIn[base+i]]
				q := &s.queues[e]
				s.recycleExt(q.msgs[q.head:]) // delivered prefix holds no chunks
				clear(q.msgs)
				q.msgs = q.msgs[:0]
				q.head, q.sent = 0, 0
				if s.faultQ != nil {
					fq := &s.faultQ[e]
					fq.attempt, fq.hold, fq.rolled = 0, 0, false
				}
			}
			s.dirtyCnt[v] = 0
		}
		s.shardCur[sh] = s.shardCur[sh][:0]
	}
}

// queueBacklog returns the words still queued on bandwidth-limited edges.
func (s *Simulator) queueBacklog() int64 {
	var backlog int64
	for sh := range s.shardCur {
		for _, v32 := range s.shardCur[sh] {
			v := int(v32)
			base := int(s.inStart[v])
			for i := 0; i < int(s.dirtyCnt[v]); i++ {
				q := &s.queues[s.inEdges[s.dirtyIn[base+i]]]
				for j := int(q.head); j < len(q.msgs); j++ {
					w := int64(q.msgs[j].Words)
					if j == int(q.head) {
						w -= int64(q.sent)
					}
					backlog += w
				}
			}
		}
	}
	return backlog
}

// Send queues a message of the given word count to neighbor `to`. Delivery
// happens when the edge's bandwidth allows; a backlogged edge delays later
// messages but charges no memory (see edgeQueue). The payload's Ext slice is
// borrowed: Send copies it into an arena chunk, so the caller's buffer (and a
// received payload being relayed) may be reused immediately. Sending to a
// non-neighbor panics: it is a programming error that would break the model.
func (c *Ctx) Send(to int, p Payload, words int) {
	e := c.sim.edgeID(c.v, to)
	if e < 0 {
		panic(fmt.Sprintf("congest: vertex %d sent to non-neighbor %d", c.v, to))
	}
	if words < 1 {
		words = 1
	}
	ar := c.arena
	if ar == nil {
		ar = &c.sim.arena
	}
	p.Ext = ar.clone(p.Ext)
	// Enqueue straight onto the edge queue: the sender is this queue's only
	// writer and delivery only runs between rounds, so the append is safe
	// even on the parallel step path - and the message is copied once, not
	// staged through a per-context out buffer. Cross-vertex bookkeeping
	// (dirty lists, shard worklists) is deferred to the serial enqueue
	// walk, which only needs the empty->backed transitions.
	q := &c.sim.queues[e]
	if q.empty() {
		c.outEdge = append(c.outEdge, e)
	}
	q.msgs = append(q.msgs, Message{From: c.v, Payload: p, Words: words})
}

// fastForward advances every backlogged queue by k-1 rounds of bandwidth,
// where round k is the earliest future round in which any head message
// completes (k >= 1; k == 1 means the next round already delivers and there
// is nothing to skip). The jump is clamped to limit so Run still respects
// maxRounds. Only called when no vertex is active: an idle round does
// nothing but add one capacity of budget to each backlogged edge, so
// advancing sent by jump*capacity reproduces the skipped rounds exactly.
func (s *Simulator) fastForward(limit int) int {
	if limit <= 0 {
		return 0
	}
	minRounds := 0
	for sh := range s.shardCur {
		for _, v32 := range s.shardCur[sh] {
			v := int(v32)
			base := int(s.inStart[v])
			for i := 0; i < int(s.dirtyCnt[v]); i++ {
				q := &s.queues[s.inEdges[s.dirtyIn[base+i]]]
				r := (q.msgs[q.head].Words - int(q.sent) + s.capacity - 1) / s.capacity
				if minRounds == 0 || r < minRounds {
					minRounds = r
				}
			}
		}
	}
	jump := minRounds - 1
	if jump > limit {
		jump = limit
	}
	if jump <= 0 {
		return 0
	}
	adv := jump * s.capacity
	for sh := range s.shardCur {
		for _, v32 := range s.shardCur[sh] {
			v := int(v32)
			base := int(s.inStart[v])
			for i := 0; i < int(s.dirtyCnt[v]); i++ {
				s.queues[s.inEdges[s.dirtyIn[base+i]]].sent += int32(adv)
			}
		}
	}
	return jump
}
