package congest

import "lowmemroute/internal/obs"

// obsHooks is the simulator's connection to a live metrics registry
// (WithMetrics): the metric pointers, fetched once at wiring time, plus
// the last-published counter totals so every sync point adds a
// non-negative delta. Deltas keep the exported counters monotone even
// when several simulators share one registry (Prometheus counter
// semantics), and let a registry attach to a simulator mid-life.
//
// Metrics are strictly observational: hooks touch only these pointers and
// the engine pays one nil check per round, so a simulator without a
// registry behaves — and allocates — exactly as before.
type obsHooks struct {
	rounds   *obs.Counter
	messages *obs.Counter
	words    *obs.Counter

	queueDepth  *obs.Gauge // destinations with backlogged incoming edges
	active      *obs.Gauge // vertices that executed in the last round
	meterHigh   *obs.Gauge // high-water per-vertex memory meter (words)
	arenaChunks *obs.Gauge // payload-arena free chunks after a run
	arenaWords  *obs.Gauge // capacity words parked in the arena free lists

	lastRounds   int64
	lastMessages int64
	lastWords    int64
}

// WithMetrics exports the simulator's live state into reg: monotone
// rounds/messages/words counters and queue-depth, active-vertex,
// meter-high-water, and arena-occupancy gauges. A nil registry is a no-op
// option.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Simulator) {
		if reg == nil {
			return
		}
		reg.SetHelp("congest_rounds_total", "Simulated CONGEST rounds executed (including analytically charged primitives).")
		reg.SetHelp("congest_messages_total", "Messages delivered by the simulator.")
		reg.SetHelp("congest_words_total", "O(log n)-bit words delivered by the simulator.")
		reg.SetHelp("congest_queue_depth", "Destinations with backlogged incoming edge queues after the last round.")
		reg.SetHelp("congest_active_vertices", "Vertices that executed in the last simulated round.")
		reg.SetHelp("congest_meter_peak_words", "High-water per-vertex memory meter level, in words.")
		reg.SetHelp("congest_arena_free_chunks", "Payload-arena chunks parked on free lists after the last run.")
		reg.SetHelp("congest_arena_free_words", "Capacity words parked on the payload-arena free lists after the last run.")
		s.obs = &obsHooks{
			rounds:      reg.Counter("congest_rounds_total"),
			messages:    reg.Counter("congest_messages_total"),
			words:       reg.Counter("congest_words_total"),
			queueDepth:  reg.Gauge("congest_queue_depth"),
			active:      reg.Gauge("congest_active_vertices"),
			meterHigh:   reg.Gauge("congest_meter_peak_words"),
			arenaChunks: reg.Gauge("congest_arena_free_chunks"),
			arenaWords:  reg.Gauge("congest_arena_free_words"),
		}
	}
}

// obsSync publishes counter totals as of the given effective values
// (mid-Run the simulator's own rounds field lags the executed count, so
// the engine passes the live total). Callers guard s.obs != nil.
func (s *Simulator) obsSync(rounds, messages, words int64) {
	o := s.obs
	if d := rounds - o.lastRounds; d > 0 {
		o.rounds.Add(d)
		o.lastRounds = rounds
	}
	if d := messages - o.lastMessages; d > 0 {
		o.messages.Add(d)
		o.lastMessages = messages
	}
	if d := words - o.lastWords; d > 0 {
		o.words.Add(d)
		o.lastWords = words
	}
}

// obsSyncAll publishes the simulator's committed totals; safe to call from
// any accounting site (AddRounds, broadcast, convergecast, end of Run).
func (s *Simulator) obsSyncAll() {
	if s.obs == nil {
		return
	}
	s.obsSync(s.rounds, s.messages, s.words)
}

// obsRunEnd publishes the end-of-run gauges that are too expensive (O(n)
// meter scan, arena walk under its lock) to refresh every round.
func (s *Simulator) obsRunEnd() {
	o := s.obs
	if o == nil {
		return
	}
	s.obsSyncAll()
	o.meterHigh.SetMax(s.PeakMemory())
	chunks, words := s.arena.stats()
	for i := range s.shardArena {
		c, w := s.shardArena[i].stats()
		chunks += c
		words += w
	}
	o.arenaChunks.Set(chunks)
	o.arenaWords.Set(words)
}
