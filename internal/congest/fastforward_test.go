package congest

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lowmemroute/internal/graph"
)

// ffWorkload is a pacing-heavy program with long idle stretches: leaves fire
// differently-sized messages at the star center over capacity-1 edges, go
// quiet, and the center answers each arrival with another slow message. Every
// observable - counters, per-vertex delivery logs, meter peaks - must be
// identical whether the idle rounds are simulated or fast-forwarded.
func ffWorkload(t *testing.T, opts ...Option) (rounds, messages, words int64, peaks []int64, logs [][]rcvd) {
	t.Helper()
	const n = 6
	g := graph.Star(n, graph.UnitWeights, rand.New(rand.NewSource(2)))
	s := New(g, append([]Option{WithEdgeCapacity(1)}, opts...)...)
	logs = make([][]rcvd, n)
	s.Run(leafIDs(n), 200, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			logs[v] = append(logs[v], rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
		if v != 0 && ctx.Round() == 0 {
			// Leaf v's message takes 3v+1 rounds to cross; nothing else is
			// active meanwhile, so the engine sees pure idle backlog.
			ctx.Send(0, Payload{W0: IntWord(v)}, 3*v+1)
			return
		}
		if v == 0 {
			for _, m := range ctx.In() {
				ctx.Send(m.From, Payload{W0: IntWord(-m.From)}, 5)
			}
		}
	})
	peaks = make([]int64, n)
	for v := 0; v < n; v++ {
		peaks[v] = s.Mem(v).Peak()
	}
	return s.Rounds(), s.Messages(), s.Words(), peaks, logs
}

func TestIdleFastForwardEquivalence(t *testing.T) {
	r1, m1, w1, p1, l1 := ffWorkload(t, WithIdleFastForward(true))
	r2, m2, w2, p2, l2 := ffWorkload(t, WithIdleFastForward(false))
	if r1 != r2 || m1 != m2 || w1 != w2 {
		t.Fatalf("counters differ: ff-on rounds=%d msgs=%d words=%d, ff-off rounds=%d msgs=%d words=%d",
			r1, m1, w1, r2, m2, w2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("meter peaks differ: ff-on %v, ff-off %v", p1, p2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("delivery logs differ:\nff-on:  %v\nff-off: %v", l1, l2)
	}
	// The workload's longest single crossing is 16 rounds; if the equality
	// above had been established by fast-forward never engaging, the rounds
	// count would not include the idle stretches. Sanity-check it does.
	if r1 < 16 {
		t.Fatalf("rounds=%d, expected the full paced schedule", r1)
	}
}

// TestIdleFastForwardTraceByteIdentical checks the tracer gate: a traced run
// executes every round literally regardless of the fast-forward setting, so
// the per-round sample streams must be byte-identical.
func TestIdleFastForwardTraceByteIdentical(t *testing.T) {
	sample := func(on bool) []byte {
		sink := &collectingSink{}
		_, _, _, _, _ = ffWorkload(t, WithIdleFastForward(on), WithTrace(sink))
		var buf bytes.Buffer
		for _, s := range sink.samples {
			fmt.Fprintf(&buf, "%d %s %d %d %d %d %d %d %g\n",
				s.Round, s.Kind, s.Rounds, s.Active, s.Messages, s.Words, s.Backlog, s.MemMax, s.MemMean)
		}
		return buf.Bytes()
	}
	if on, off := sample(true), sample(false); !bytes.Equal(on, off) {
		t.Fatalf("trace streams differ under fast-forward:\non:\n%s\noff:\n%s", on, off)
	}
}

// TestFastForwardRespectsMaxRounds: the jump may not carry Run past its
// round budget.
func TestFastForwardRespectsMaxRounds(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	for _, maxRounds := range []int{2, 3, 5, 100} {
		s := New(g, WithEdgeCapacity(1))
		delivered := false
		executed := s.Run([]int{0}, maxRounds, func(v int, ctx *Ctx) {
			if v == 0 && ctx.Round() == 0 {
				ctx.Send(1, Payload{}, 10) // needs 10 transmission rounds
			}
			if v == 1 && len(ctx.In()) > 0 {
				delivered = true
			}
		})
		wantRounds := maxRounds
		wantDelivered := false
		if maxRounds > 10 {
			wantRounds = 11
			wantDelivered = true
		}
		if executed != wantRounds || delivered != wantDelivered {
			t.Fatalf("maxRounds=%d: executed=%d delivered=%v, want %d/%v",
				maxRounds, executed, delivered, wantRounds, wantDelivered)
		}
	}
}
