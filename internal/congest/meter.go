package congest

// Meter tracks the memory footprint of one simulated processor in words
// (a word stores a vertex id, an edge weight, or a distance - the CONGEST
// RAM unit). Algorithms charge persistent storage with Charge/Release and
// the engine records transient inbox load with Spike. Peak returns the
// high-water mark, the quantity reported in the paper's "memory per vertex"
// columns.
//
// The zero value is a meter with no usage.
type Meter struct {
	current int64
	peak    int64
	// window is the maximum instantaneous level (including transient
	// spikes) since the last SampleWindow call - the tracer's per-round
	// memory time series hook.
	window int64
}

// note records an instantaneous level against the high-water mark and the
// current sampling window.
func (m *Meter) note(level int64) {
	if level > m.peak {
		m.peak = level
	}
	if level > m.window {
		m.window = level
	}
}

// Charge adds words of persistent storage.
func (m *Meter) Charge(words int64) {
	if words <= 0 {
		return
	}
	m.current += words
	m.note(m.current)
}

// Release frees words of persistent storage (clamped at zero).
func (m *Meter) Release(words int64) {
	if words <= 0 {
		return
	}
	m.current -= words
	if m.current < 0 {
		m.current = 0
	}
}

// Spike records a transient load of words on top of current usage without
// changing current usage (e.g. a round's inbox, processed streaming).
func (m *Meter) Spike(words int64) {
	if words <= 0 {
		return
	}
	m.note(m.current + words)
}

// Current returns the currently charged persistent words.
func (m *Meter) Current() int64 { return m.current }

// Peak returns the high-water mark in words.
func (m *Meter) Peak() int64 { return m.peak }

// SampleWindow returns the maximum instantaneous level - persistent charges
// and transient spikes alike - observed since the previous call, and starts
// a new window at the current level. The simulator's tracer calls this once
// per sampled round; it never affects Current or Peak.
func (m *Meter) SampleWindow() int64 {
	w := m.window
	if m.current > w {
		w = m.current
	}
	m.window = m.current
	return w
}

// Reset zeroes the meter.
func (m *Meter) Reset() { m.current, m.peak, m.window = 0, 0, 0 }
