package congest

import (
	"math"
	"math/bits"
	"sync"
)

// Typed wire payloads. A Message carries a Payload value instead of an `any`:
// four inline words cover the common O(1)-word messages without boxing, and
// variable-length tails ride in Ext, a []uint64 backed by the simulator's
// payload arena. The Kind tag lets handlers switch instead of type-asserting.
//
// Ownership protocol (copy-on-send):
//
//   - The Ext slice passed to Ctx.Send is BORROWED: Send copies it into an
//     arena chunk before queueing, so callers may reuse their encode buffer
//     (typically Ctx.Ext scratch) immediately — including relaying a received
//     payload verbatim with ctx.Send(child, m.Payload, words).
//   - The Ext slice seen by a receiver in ctx.In() is OWNED BY THE ENGINE and
//     valid only during that step call: the chunk returns to the arena when
//     the inbox is recycled at the end of the round. Handlers that retain
//     tail data must copy it into their own (metered) state.
//   - Broadcast/Convergecast payloads never touch the arena: those primitives
//     are charged analytically and deliver the caller's BroadcastMsg values
//     directly, so their Ext slices stay caller-owned.

// PayloadKind tags the wire format of a Payload. Kinds are scoped to the
// algorithm driving the simulator: a Run or Broadcast only ever observes the
// kinds its own step functions send, so packages declare their own constants
// starting at 1 (0 is the zero Payload, "no payload").
type PayloadKind uint8

// Payload is a typed message body: up to four inline words (W0..W3) plus an
// optional variable-length tail. See the ownership protocol above for who may
// hold Ext when.
type Payload struct {
	Kind           PayloadKind
	W0, W1, W2, W3 uint64
	Ext            []uint64
}

// IntWord encodes a signed integer (vertex and edge ids, hop budgets,
// including sentinels like graph.NoVertex) as a wire word.
func IntWord(v int) uint64 { return uint64(int64(v)) }

// WordInt decodes an IntWord.
func WordInt(w uint64) int { return int(int64(w)) }

// FloatWord encodes a float64 (distances, weights) exactly as a wire word.
func FloatWord(f float64) uint64 { return math.Float64bits(f) }

// WordFloat decodes a FloatWord.
func WordFloat(w uint64) float64 { return math.Float64frombits(w) }

// BoolWord encodes a flag as a wire word.
func BoolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// WordBool decodes a BoolWord.
func WordBool(w uint64) bool { return w != 0 }

// wordArena recycles Ext chunks through power-of-two size-class free lists.
// get runs inside the parallel step phase (every Ctx.Send of an Ext payload),
// so the lists are mutex-guarded; put runs only on the engine's serial paths
// (inbox recycle, end-of-Run cleanup). Chunks are not zeroed on get: Send
// copies exactly the words it returns, so no stale data is ever observable.
type wordArena struct {
	mu   sync.Mutex
	free [maxArenaClass + 1][][]uint64
}

const maxArenaClass = 48 // chunks up to 2^48 words; larger would OOM first

func arenaClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// clone copies src into an arena chunk of exactly len(src) words. A nil or
// empty src clones to nil.
func (a *wordArena) clone(src []uint64) []uint64 {
	n := len(src)
	if n == 0 {
		return nil
	}
	c := arenaClass(n)
	a.mu.Lock()
	list := a.free[c]
	var chunk []uint64
	if k := len(list); k > 0 {
		chunk = list[k-1][:n]
		a.free[c] = list[:k-1]
	}
	a.mu.Unlock()
	if chunk == nil {
		chunk = make([]uint64, n, 1<<c)
	}
	copy(chunk, src)
	return chunk
}

// put returns a chunk obtained from clone to its size-class free list.
func (a *wordArena) put(chunk []uint64) {
	c := cap(chunk)
	if c == 0 || c&(c-1) != 0 {
		return // not an arena chunk; let the GC have it
	}
	cls := bits.Len(uint(c)) - 1
	if cls > maxArenaClass {
		return
	}
	a.mu.Lock()
	a.free[cls] = append(a.free[cls], chunk[:0])
	a.mu.Unlock()
}

// stats reports the arena's parked inventory: free chunks across all size
// classes and the capacity words they hold. Walks the lists under the
// mutex, so it is kept off the per-round path (the metrics hooks read it
// once per Run).
func (a *wordArena) stats() (chunks, words int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for cls, list := range a.free {
		chunks += int64(len(list))
		words += int64(len(list)) << uint(cls)
	}
	return chunks, words
}

// recycleExt harvests the arena chunks of a delivered message batch, nil-ing
// each Ext as it goes so a chunk can never be double-freed. Ext is the only
// pointer in a Message, so callers that truncate the batch afterwards need
// no further zeroing. The batch must be owned by the caller (serial paths,
// or a delivery shard discarding its own queues — put itself is locked).
func (s *Simulator) recycleExt(msgs []Message) {
	for i := range msgs {
		if e := msgs[i].Payload.Ext; e != nil {
			s.arena.put(e)
			msgs[i].Payload.Ext = nil
		}
	}
}

// Ext returns this context's reusable encode buffer, resized to n words. It
// is scratch for building a Payload tail before Send (which copies it); the
// buffer is invalidated by the next Ext call on the same context.
func (c *Ctx) Ext(n int) []uint64 {
	if cap(c.extBuf) < n {
		c.extBuf = make([]uint64, n)
	}
	c.extBuf = c.extBuf[:n]
	return c.extBuf
}
