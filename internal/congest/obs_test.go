package congest

import (
	"math/rand"
	"testing"

	"lowmemroute/internal/graph"
	"lowmemroute/internal/obs"
)

// floodOnce builds a small torus simulator with the given options and runs a
// short flood, returning the simulator for its committed totals.
func floodOnce(t *testing.T, opts ...Option) *Simulator {
	t.Helper()
	const side, floodRounds = 6, 4
	g := graph.Torus(side, side, graph.UnitWeights, rand.New(rand.NewSource(7)))
	s := New(g, opts...)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	s.Run(all, floodRounds+1, func(v int, ctx *Ctx) {
		if ctx.Round() < floodRounds {
			for _, nb := range g.Neighbors(v) {
				ctx.Send(nb.To, Payload{W0: IntWord(v)}, 1)
			}
			ctx.Wake()
		}
	})
	return s
}

// TestWithMetricsDeltaSync pins the registry-sharing contract: the exported
// counters are delta-synced, so two simulators feeding one registry add up
// to the sum of their committed totals, and the counters stay monotone.
func TestWithMetricsDeltaSync(t *testing.T) {
	reg := obs.NewRegistry()
	a := floodOnce(t, WithMetrics(reg))
	rounds := reg.Counter("congest_rounds_total").Value()
	msgs := reg.Counter("congest_messages_total").Value()
	words := reg.Counter("congest_words_total").Value()
	if rounds != a.Rounds() || msgs != a.Messages() || words != a.Words() {
		t.Fatalf("registry (%d,%d,%d) != simulator totals (%d,%d,%d)",
			rounds, msgs, words, a.Rounds(), a.Messages(), a.Words())
	}
	if rounds == 0 || msgs == 0 || words == 0 {
		t.Fatal("flood exported no traffic")
	}

	b := floodOnce(t, WithMetrics(reg))
	if got, want := reg.Counter("congest_rounds_total").Value(), a.Rounds()+b.Rounds(); got != want {
		t.Fatalf("shared registry rounds = %d, want %d (sum of both simulators)", got, want)
	}
	if got, want := reg.Counter("congest_words_total").Value(), a.Words()+b.Words(); got != want {
		t.Fatalf("shared registry words = %d, want %d", got, want)
	}

	// The high-water gauge keeps the max across simulators sharing the
	// registry (SetMax), and both runs are identical here.
	if got := reg.Gauge("congest_meter_peak_words").Value(); got != a.PeakMemory() || got != b.PeakMemory() {
		t.Fatalf("meter high-water gauge = %d, want peak memory %d/%d", got, a.PeakMemory(), b.PeakMemory())
	}
}

// TestWithMetricsObservational checks that attaching a registry changes
// nothing the simulation can observe: committed totals match a bare run.
func TestWithMetricsObservational(t *testing.T) {
	bare := floodOnce(t)
	metered := floodOnce(t, WithMetrics(obs.NewRegistry()))
	if bare.Rounds() != metered.Rounds() ||
		bare.Messages() != metered.Messages() ||
		bare.Words() != metered.Words() {
		t.Fatalf("metered run diverged: bare (%d,%d,%d) vs metered (%d,%d,%d)",
			bare.Rounds(), bare.Messages(), bare.Words(),
			metered.Rounds(), metered.Messages(), metered.Words())
	}
	if bare.PeakMemory() != metered.PeakMemory() {
		t.Fatalf("peak memory diverged: %d vs %d", bare.PeakMemory(), metered.PeakMemory())
	}
	// WithMetrics(nil) must be a usable no-op.
	if s := floodOnce(t, WithMetrics(nil)); s.Rounds() != bare.Rounds() {
		t.Fatal("WithMetrics(nil) perturbed the run")
	}
}
