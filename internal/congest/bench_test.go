package congest

// Micro-benchmarks of the round engine's hot path. These are the inputs of
// `make bench-json` (the benchmark-regression harness): each reports
// allocations so steady-state allocation regressions fail the bench diff,
// plus the simulated rounds so an accidental behaviour change (more or fewer
// rounds for the same workload) is equally visible.
//
// All three construct the simulator once and run the workload b.N times: the
// measured quantity is the steady-state cost of Run itself, not of building
// the scratch state (which is allocated once and recycled across rounds).

import (
	"math/rand"
	"runtime"
	"testing"

	"lowmemroute/internal/graph"
)

// reportPeakHeap reports the post-GC live heap as the host-measured
// peak_heap_bytes metric: bench-diff compares it with tolerance (like the
// -ns latency quantiles), so a simulator memory regression fails the diff
// while GC wobble does not.
func reportPeakHeap(b *testing.B) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc), "peak_heap_bytes")
}

// BenchmarkRunFlood is the all-active load: every vertex of a torus is
// active every round and sends one word to each neighbor for a fixed number
// of rounds. This is the regime of the Bellman-Ford cluster growth and the
// hopset searches (many active vertices, every edge busy).
func BenchmarkRunFlood(b *testing.B) {
	const side = 32 // 1024 vertices, 2048 edges
	g := graph.Torus(side, side, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	const floodRounds = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(all, floodRounds, func(v int, ctx *Ctx) {
			if ctx.Round() < floodRounds-1 {
				for _, nb := range g.Neighbors(v) {
					ctx.Send(nb.To, Payload{}, 1)
				}
				ctx.Wake()
			}
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Rounds())/float64(b.N), "rounds/op")
	b.ReportMetric(float64(s.Messages())/float64(b.N), "msgs/op")
	reportPeakHeap(b)
}

// BenchmarkRunSparse is the few-active load: a single token walks a long
// path, so each round has exactly one active vertex and one busy edge while
// n-1 vertices stay idle. Per-round cost must be O(active), not O(n), and
// the steady-state round loop must not allocate at all.
func BenchmarkRunSparse(b *testing.B) {
	const n = 16384
	g := graph.Path(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	const hops = 64
	start := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(start, hops+1, func(v int, ctx *Ctx) {
			if v < hops {
				ctx.Send(v+1, Payload{}, 1)
			}
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Rounds())/float64(b.N), "rounds/op")
	reportPeakHeap(b)
}

// BenchmarkDelivery exercises the bandwidth-pacing path: a burst of large
// messages on few capacity-limited edges keeps the edge queues backlogged
// for many rounds, so the cost measured is queue draining (including the
// partial-transmission q.sent path), not step execution.
func BenchmarkDelivery(b *testing.B) {
	const n = 16
	g := graph.Star(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithEdgeCapacity(2))
	leaves := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		leaves = append(leaves, v)
	}
	const burst = 8
	const bigWords = 5 // > capacity: every message crosses in 3 rounds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(leaves, 200, func(v int, ctx *Ctx) {
			if v != 0 && ctx.Round() == 0 {
				for j := 0; j < burst; j++ {
					ctx.Send(0, Payload{}, bigWords)
				}
			}
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Rounds())/float64(b.N), "rounds/op")
	b.ReportMetric(float64(s.Messages())/float64(b.N), "msgs/op")
}
