package congest

import (
	"math/rand"
	"testing"

	"lowmemroute/internal/graph"
)

func TestQueueFIFOPerEdge(t *testing.T) {
	// Messages sent on one edge in one round must be delivered in send
	// order, even when bandwidth splits them across rounds.
	g := pathGraph(2)
	s := New(g, WithEdgeCapacity(1))
	var got []int
	s.Run([]int{0}, 30, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			for i := 0; i < 6; i++ {
				ctx.Send(1, Payload{W0: IntWord(i)}, 1)
			}
		}
		if v == 1 {
			for _, m := range ctx.In() {
				got = append(got, WordInt(m.Payload.W0))
			}
		}
	})
	if len(got) != 6 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, x := range got {
		if x != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestRunTwicePhases(t *testing.T) {
	// Two consecutive Runs on the same simulator: counters accumulate and
	// state from phase 1 does not leak into phase 2's inboxes.
	g := pathGraph(3)
	s := New(g)
	const kindPhase1, kindPhase2 = PayloadKind(1), PayloadKind(2)
	s.Run([]int{0}, 5, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			ctx.Send(1, Payload{Kind: kindPhase1}, 1)
		}
	})
	r1 := s.Rounds()
	leaked := false
	s.Run([]int{2}, 5, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			if m.Payload.Kind == kindPhase1 {
				leaked = true
			}
		}
		if v == 2 && ctx.Round() == 0 {
			ctx.Send(1, Payload{Kind: kindPhase2}, 1)
		}
	})
	if leaked {
		t.Fatal("phase 1 message leaked into phase 2")
	}
	if s.Rounds() <= r1 {
		t.Fatal("rounds should accumulate across runs")
	}
}

func TestWithDiameterAffectsBroadcastOnly(t *testing.T) {
	g := pathGraph(4)
	a := New(g, WithDiameter(3))
	b := New(g, WithDiameter(100))
	msg := []BroadcastMsg{{Origin: 0, Words: 1}}
	a.Broadcast(msg, nil)
	b.Broadcast(msg, nil)
	if b.Rounds()-a.Rounds() != 2*(100-3) {
		t.Fatalf("diameter delta: %d vs %d", a.Rounds(), b.Rounds())
	}
}

func TestBroadcastWordAccounting(t *testing.T) {
	g := pathGraph(5)
	s := New(g, WithDiameter(4))
	s.Broadcast([]BroadcastMsg{
		{Origin: 0, Words: 3},
		{Origin: 1, Words: 2},
	}, nil)
	// words = (3+2) * (n-1) tree edges.
	if got, want := s.Words(), int64(5*4); got != want {
		t.Fatalf("words=%d want %d", got, want)
	}
}

func TestBroadcastZeroWordMessagesCountAsOne(t *testing.T) {
	g := pathGraph(3)
	s := New(g, WithDiameter(2))
	s.Broadcast([]BroadcastMsg{{Origin: 0, Words: 0}}, nil)
	if got := s.Words(); got != 2 { // 1 word * 2 tree edges
		t.Fatalf("words=%d want 2", got)
	}
}

func TestConvergecastMemorySpikesAtSink(t *testing.T) {
	g := pathGraph(4)
	s := New(g, WithDiameter(3))
	s.Convergecast(0, []BroadcastMsg{{Origin: 2, Words: 5}}, func(m *BroadcastMsg) {})
	if s.Mem(0).Peak() != 5 {
		t.Fatalf("sink peak=%d want 5", s.Mem(0).Peak())
	}
	if s.Mem(1).Peak() != 0 {
		t.Fatalf("relay peak=%d want 0 (streaming)", s.Mem(1).Peak())
	}
}

func TestSimulatorAccessors(t *testing.T) {
	g := pathGraph(3)
	s := New(g, WithSeed(5))
	if s.N() != 3 {
		t.Fatalf("N=%d", s.N())
	}
	if s.Graph() != g {
		t.Fatal("Graph accessor")
	}
	if s.Diameter() < 2 {
		t.Fatalf("D=%d", s.Diameter())
	}
	if s.Rand() == nil {
		t.Fatal("nil rng")
	}
}

func TestDisconnectedGraphDiameterFallback(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	s := New(g)
	if s.Diameter() < 1 {
		t.Fatalf("D=%d want >= 1 fallback", s.Diameter())
	}
}

func TestLargeFanInOneRound(t *testing.T) {
	// n-1 leaves -> center in a single round: capacity applies per edge,
	// so everything lands in one round and only the largest single message
	// spikes the center's memory.
	n := 300
	g := graph.Star(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	received := 0
	rounds := s.Run(leafIDs(n), 3, func(v int, ctx *Ctx) {
		if v != 0 && ctx.Round() == 0 {
			ctx.Send(0, Payload{W0: IntWord(v)}, 2)
		}
		if v == 0 {
			received += len(ctx.In())
		}
	})
	if received != n-1 {
		t.Fatalf("received %d", received)
	}
	if rounds > 2 {
		t.Fatalf("rounds=%d want <= 2", rounds)
	}
	if s.Mem(0).Peak() != 2 {
		t.Fatalf("center peak=%d want 2 (one message)", s.Mem(0).Peak())
	}
}

func leafIDs(n int) []int {
	out := make([]int, 0, n-1)
	for v := 1; v < n; v++ {
		out = append(out, v)
	}
	return out
}
