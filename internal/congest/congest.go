// Package congest implements a deterministic round-based simulator for the
// CONGEST RAM model of Elkin-Neiman (PODC 2018): one processor per vertex of
// a weighted graph, synchronous rounds, per-edge bandwidth of O(1) words per
// round (a word holds a vertex id, an edge weight, or a distance), and
// per-vertex memory meters that record the peak number of words each
// processor ever holds.
//
// Algorithms are written as step functions executed once per active vertex
// per round; within a round all vertices observe the same pre-round state
// (message delivery is barrier-synchronised), and rounds are executed by a
// goroutine worker pool. Bandwidth is enforced: traffic exceeding an edge's
// per-round word budget is queued, the queue delays delivery and its words
// are charged to the sender's memory meter - this is exactly the congestion
// that the paper's random start-time scheduling is designed to avoid.
//
// Receiving is link-buffered and free (a vertex may receive one message per
// incident edge per round and process them streaming, as the model allows);
// memory is charged for state an algorithm retains across rounds, which the
// algorithm does explicitly through its Meter.
//
// The package also provides the Lemma 1 broadcast primitive (pipelined
// BFS-tree broadcast of M messages in O(M + D) rounds), whose cost is
// charged analytically - simulating each broadcast hop explicitly would
// multiply simulation cost by n without changing any algorithmic behaviour.
package congest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"lowmemroute/internal/graph"
	"lowmemroute/internal/trace"
)

// DefaultEdgeCapacity is the per-round word budget of a directed edge: a
// CONGEST RAM message carries O(1) words; we fix the constant at 4 (enough
// for an id, a distance, a hop budget and a tag), matching the "O(1) edge
// weights and identities" regime of the model.
const DefaultEdgeCapacity = 4

// Message is a point-to-point message delivered along a graph edge.
type Message struct {
	From    int
	Payload any
	Words   int

	seq int // per-sender sequence, for deterministic ordering
}

// StepFunc is one vertex's program for one round. It may read the inbox via
// ctx.In(), send messages to neighbors via ctx.Send, keep itself scheduled
// via ctx.Wake, and charge its memory meter via ctx.Mem().
type StepFunc func(v int, ctx *Ctx)

// Simulator executes CONGEST rounds over a fixed communication graph.
type Simulator struct {
	g        *graph.Graph
	d        int // hop-diameter bound used for broadcast cost accounting
	capacity int // words per directed edge per round

	rounds   int64
	messages int64
	words    int64

	inbox  [][]Message
	queues map[edgeKey]*edgeQueue
	meters []Meter

	workers int
	rng     *rand.Rand

	// tracer, when non-nil, receives one RoundSample per simulated round
	// and per analytically-charged primitive. Disabled tracing costs one
	// nil check per round.
	tracer trace.Sink
}

type edgeKey struct{ from, to int }

// edgeQueue models the pacing of a bandwidth-limited edge. Backlog delays
// delivery (rounds) but does not charge the sender's memory: a real CONGEST
// processor regenerates outgoing messages from its stored state (already
// charged) rather than holding per-edge copies.
type edgeQueue struct {
	msgs []Message
	// sent is the number of words of msgs[0] already transmitted in
	// previous rounds (large messages take several rounds to cross).
	sent int
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithWorkers sets the number of goroutines executing each round.
func WithWorkers(w int) Option {
	return func(s *Simulator) {
		if w > 0 {
			s.workers = w
		}
	}
}

// WithSeed sets the seed of the simulator's deterministic RNG.
func WithSeed(seed int64) Option {
	return func(s *Simulator) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithDiameter overrides the hop-diameter bound used when charging
// broadcast rounds (defaults to a 2x eccentricity upper bound from vertex 0).
func WithDiameter(d int) Option {
	return func(s *Simulator) {
		if d >= 0 {
			s.d = d
		}
	}
}

// WithTrace attaches a telemetry sink receiving per-round samples. Pass a
// *trace.Recorder; a nil sink leaves tracing disabled.
func WithTrace(t trace.Sink) Option {
	return func(s *Simulator) { s.tracer = t }
}

// WithEdgeCapacity sets the per-round word budget of each directed edge.
// Zero or negative means unlimited (a convenient "LOCAL model" switch for
// tests and ablations).
func WithEdgeCapacity(c int) Option {
	return func(s *Simulator) { s.capacity = c }
}

// New creates a simulator over communication graph g.
func New(g *graph.Graph, opts ...Option) *Simulator {
	s := &Simulator{
		g:        g,
		d:        1,
		capacity: DefaultEdgeCapacity,
		inbox:    make([][]Message, g.N()),
		queues:   make(map[edgeKey]*edgeQueue),
		meters:   make([]Meter, g.N()),
		workers:  runtime.GOMAXPROCS(0),
		rng:      rand.New(rand.NewSource(1)),
	}
	if g.N() > 0 {
		if ub, err := g.HopRadiusUpperBound(); err == nil {
			s.d = ub
		}
	}
	if s.d < 1 {
		s.d = 1
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Graph returns the communication graph.
func (s *Simulator) Graph() *graph.Graph { return s.g }

// N returns the number of processors.
func (s *Simulator) N() int { return s.g.N() }

// Diameter returns the hop-diameter bound used for broadcast accounting.
func (s *Simulator) Diameter() int { return s.d }

// Rounds returns the total number of rounds charged so far.
func (s *Simulator) Rounds() int64 { return s.rounds }

// Messages returns the total number of messages delivered so far.
func (s *Simulator) Messages() int64 { return s.messages }

// Words returns the total number of words carried by delivered messages.
func (s *Simulator) Words() int64 { return s.words }

// Mem returns vertex v's memory meter.
func (s *Simulator) Mem(v int) *Meter { return &s.meters[v] }

// PeakMemory returns the maximum peak memory (in words) over all vertices.
func (s *Simulator) PeakMemory() int64 {
	var mx int64
	for i := range s.meters {
		if p := s.meters[i].Peak(); p > mx {
			mx = p
		}
	}
	return mx
}

// AvgPeakMemory returns the mean per-vertex peak memory in words.
func (s *Simulator) AvgPeakMemory() float64 {
	if len(s.meters) == 0 {
		return 0
	}
	var t int64
	for i := range s.meters {
		t += s.meters[i].Peak()
	}
	return float64(t) / float64(len(s.meters))
}

// Rand returns the simulator's deterministic RNG. Single-threaded phases
// only; per-vertex code should use DeriveRand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// DeriveRand returns a fresh RNG for vertex v, seeded deterministically and
// independently of the simulator RNG stream position.
func (s *Simulator) DeriveRand(v int) *rand.Rand {
	return rand.New(rand.NewSource(int64(v)*0x9E3779B9 + 0x1234567))
}

// AddRounds charges extra rounds for phases accounted analytically.
func (s *Simulator) AddRounds(k int64) {
	if k > 0 {
		s.rounds += k
		if s.tracer != nil {
			s.emitSample(s.rounds, trace.KindAnalytic, k, 0, 0, 0)
		}
	}
}

// meterStats scans all meters: the max windowed instantaneous level (spikes
// included; windows reset) and the mean persistent level. Only called with
// tracing enabled.
func (s *Simulator) meterStats() (int64, float64) {
	var mx, sum int64
	for i := range s.meters {
		if w := s.meters[i].SampleWindow(); w > mx {
			mx = w
		}
		sum += s.meters[i].Current()
	}
	if len(s.meters) == 0 {
		return 0, 0
	}
	return mx, float64(sum) / float64(len(s.meters))
}

// queueBacklog returns the words still queued on bandwidth-limited edges.
func (s *Simulator) queueBacklog() int64 {
	var backlog int64
	for _, q := range s.queues {
		for i, m := range q.msgs {
			w := int64(m.Words)
			if i == 0 {
				w -= int64(q.sent)
			}
			backlog += w
		}
	}
	return backlog
}

// emitSample builds and delivers one RoundSample; callers guard s.tracer.
func (s *Simulator) emitSample(round int64, kind string, rounds int64, active int, msgs, words int64) {
	mx, mean := s.meterStats()
	s.tracer.RoundSample(trace.RoundSample{
		Round:    round,
		Rounds:   rounds,
		Kind:     kind,
		Active:   active,
		Messages: msgs,
		Words:    words,
		Backlog:  s.queueBacklog(),
		MemMax:   mx,
		MemMean:  mean,
	})
}

// Ctx is the per-vertex, per-round execution context handed to StepFuncs.
type Ctx struct {
	sim    *Simulator
	v      int
	round  int
	in     []Message
	out    []Message
	outDst []int
	wake   bool
	seq    int
}

// Round returns the index of the current round within the active Run.
func (c *Ctx) Round() int { return c.round }

// In returns the messages delivered to this vertex at the start of the
// round. The slice is owned by the engine; process it streaming.
func (c *Ctx) In() []Message { return c.in }

// Mem returns this vertex's memory meter.
func (c *Ctx) Mem() *Meter { return c.sim.Mem(c.v) }

// Send queues a message of the given word count to neighbor `to`. Delivery
// happens when the edge's bandwidth allows; queued words are charged to this
// vertex's memory meter until transmitted. Sending to a non-neighbor panics:
// it is a programming error that would break the model.
func (c *Ctx) Send(to int, payload any, words int) {
	if !c.sim.g.HasEdge(c.v, to) {
		panic(fmt.Sprintf("congest: vertex %d sent to non-neighbor %d", c.v, to))
	}
	if words < 1 {
		words = 1
	}
	c.out = append(c.out, Message{From: c.v, Payload: payload, Words: words, seq: c.seq})
	c.seq++
	c.outDst = append(c.outDst, to)
}

// Wake keeps this vertex scheduled next round even if it receives nothing.
func (c *Ctx) Wake() { c.wake = true }

// Run executes synchronous rounds. Vertices listed in initial are active in
// round 0; afterwards a vertex is active iff it received a message or called
// Wake. Run stops when no vertex is active and all edge queues are drained,
// or after maxRounds rounds; it returns the number of rounds executed (also
// added to the simulator's round counter).
func (s *Simulator) Run(initial []int, maxRounds int, step StepFunc) int {
	n := s.g.N()
	active := make([]bool, n)
	var actList []int
	for _, v := range initial {
		if !active[v] {
			active[v] = true
			actList = append(actList, v)
		}
	}
	sort.Ints(actList)

	executed := 0
	baseRounds := s.rounds
	for round := 0; round < maxRounds && (len(actList) > 0 || len(s.queues) > 0); round++ {
		msgsBefore, wordsBefore := s.messages, s.words
		ctxs := s.runRound(actList, round, step)
		executed++

		// Enqueue this round's sends on their directed edges.
		for _, v := range actList {
			s.inbox[v] = nil
		}
		wakeSet := make(map[int]bool)
		for _, c := range ctxs {
			if c.wake {
				wakeSet[c.v] = true
			}
			for i, m := range c.out {
				key := edgeKey{from: c.v, to: c.outDst[i]}
				q := s.queues[key]
				if q == nil {
					q = &edgeQueue{}
					s.queues[key] = q
				}
				q.msgs = append(q.msgs, m)
			}
		}

		// Deliver within bandwidth, in deterministic edge order.
		keys := make([]edgeKey, 0, len(s.queues))
		for k := range s.queues {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].from != keys[j].from {
				return keys[i].from < keys[j].from
			}
			return keys[i].to < keys[j].to
		})
		received := make(map[int]bool)
		for _, k := range keys {
			q := s.queues[k]
			budget := s.capacity
			unlimited := s.capacity <= 0
			for len(q.msgs) > 0 {
				head := q.msgs[0]
				remaining := head.Words - q.sent
				if !unlimited {
					if budget <= 0 {
						break
					}
					if remaining > budget {
						q.sent += budget
						budget = 0
						break
					}
					budget -= remaining
				}
				q.msgs = q.msgs[1:]
				q.sent = 0
				s.inbox[k.to] = append(s.inbox[k.to], head)
				s.messages++
				s.words += int64(head.Words)
				received[k.to] = true
			}
			if len(q.msgs) == 0 {
				delete(s.queues, k)
			}
		}

		if s.tracer != nil {
			s.emitSample(baseRounds+int64(executed), trace.KindRound, 1,
				len(actList), s.messages-msgsBefore, s.words-wordsBefore)
		}

		// Build next round's active list.
		var nextList []int
		for v := range wakeSet {
			nextList = append(nextList, v)
		}
		for v := range received {
			if !wakeSet[v] {
				nextList = append(nextList, v)
			}
		}
		for _, v := range nextList {
			in := s.inbox[v]
			sort.Slice(in, func(i, j int) bool {
				if in[i].From != in[j].From {
					return in[i].From < in[j].From
				}
				return in[i].seq < in[j].seq
			})
		}
		sort.Ints(nextList)
		nextActive := make([]bool, n)
		for _, v := range nextList {
			nextActive[v] = true
		}
		active = nextActive
		actList = nextList
	}
	_ = active
	s.rounds += int64(executed)
	// Drop undelivered state if we hit maxRounds.
	for _, v := range actList {
		s.inbox[v] = nil
	}
	for k := range s.queues {
		delete(s.queues, k)
	}
	return executed
}

// runRound executes step for every active vertex using the worker pool and
// returns the per-vertex contexts (in actList order).
func (s *Simulator) runRound(actList []int, round int, step StepFunc) []*Ctx {
	ctxs := make([]*Ctx, len(actList))
	run := func(i int) {
		v := actList[i]
		c := &Ctx{sim: s, v: v, round: round, in: s.inbox[v]}
		// Link buffers are free; charge only the single largest in-flight
		// message as transient working space.
		var mxWords int64
		for _, m := range c.in {
			if int64(m.Words) > mxWords {
				mxWords = int64(m.Words)
			}
		}
		s.meters[v].Spike(mxWords)
		step(v, c)
		ctxs[i] = c
	}
	if s.workers <= 1 || len(actList) < 64 {
		for i := range actList {
			run(i)
		}
		return ctxs
	}
	var wg sync.WaitGroup
	chunk := (len(actList) + s.workers - 1) / s.workers
	for w := 0; w < s.workers; w++ {
		lo := w * chunk
		if lo >= len(actList) {
			break
		}
		hi := lo + chunk
		if hi > len(actList) {
			hi = len(actList)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				run(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return ctxs
}
