// Package congest implements a deterministic round-based simulator for the
// CONGEST RAM model of Elkin-Neiman (PODC 2018): one processor per vertex of
// a weighted graph, synchronous rounds, per-edge bandwidth of O(1) words per
// round (a word holds a vertex id, an edge weight, or a distance), and
// per-vertex memory meters that record the peak number of words each
// processor ever holds.
//
// Algorithms are written as step functions executed once per active vertex
// per round; within a round all vertices observe the same pre-round state
// (message delivery is barrier-synchronised), and rounds are executed by a
// goroutine worker pool. Bandwidth is enforced: traffic exceeding an edge's
// per-round word budget is queued, the queue delays delivery and its words
// are charged to the sender's memory meter - this is exactly the congestion
// that the paper's random start-time scheduling is designed to avoid.
//
// Receiving is link-buffered and free (a vertex may receive one message per
// incident edge per round and process them streaming, as the model allows);
// memory is charged for state an algorithm retains across rounds, which the
// algorithm does explicitly through its Meter.
//
// The package also provides the Lemma 1 broadcast primitive (pipelined
// BFS-tree broadcast of M messages in O(M + D) rounds), whose cost is
// charged analytically - simulating each broadcast hop explicitly would
// multiply simulation cost by n without changing any algorithmic behaviour.
package congest

import (
	"math/rand"
	"runtime"

	"lowmemroute/internal/faults"
	"lowmemroute/internal/graph"
	"lowmemroute/internal/trace"
)

// DefaultEdgeCapacity is the per-round word budget of a directed edge: a
// CONGEST RAM message carries O(1) words; we fix the constant at 4 (enough
// for an id, a distance, a hop budget and a tag), matching the "O(1) edge
// weights and identities" regime of the model.
const DefaultEdgeCapacity = 4

// Message is a point-to-point message delivered along a graph edge. The
// payload is a typed word record (see Payload in payload.go); its Ext tail,
// if any, is engine-owned and valid only for the round it is delivered in.
type Message struct {
	From    int
	Payload Payload
	Words   int
}

// StepFunc is one vertex's program for one round. It may read the inbox via
// ctx.In(), send messages to neighbors via ctx.Send, keep itself scheduled
// via ctx.Wake, and charge its memory meter via ctx.Mem().
type StepFunc func(v int, ctx *Ctx)

// Simulator executes CONGEST rounds over a fixed communication graph.
//
// The engine (engine.go) compiles the graph into a CSR index over directed
// edges and owns every per-round structure; see the engine file comment for
// the layout and the determinism argument.
type Simulator struct {
	g *graph.Graph

	// topo is the read-only adjacency the engine compiles and handlers
	// iterate. Graph-backed simulators (New) leave it nil and lazily bridge
	// through Topo(); topology-backed simulators (NewTopo) carry only this
	// and never materialise a *graph.Graph — the million-vertex path.
	topo graph.Topology

	d        int // hop-diameter bound used for broadcast cost accounting
	capacity int // words per directed edge per round

	rounds   int64
	messages int64
	words    int64

	inbox  [][]Message
	meters []Meter

	// inboxMax[v] is the running maximum message word count delivered into
	// inbox[v] since v last stepped - maintained at delivery time so
	// stepVertex's transient-memory spike needs no O(inbox) rescan. int32:
	// a single message never carries 2^31 words.
	inboxMax []int32

	// arena recycles the Ext chunks of variable-length payloads; see the
	// ownership protocol in payload.go. It serves the serial paths; each
	// execution shard additionally owns a shardArena slot so the parallel
	// step and delivery phases never contend on one free-list mutex. Chunks
	// migrate freely between arenas (every arena is internally locked and
	// chunk contents are copied on clone), so which arena served a clone is
	// unobservable.
	arena      wordArena
	shardArena []wordArena

	// ffOff disables the idle-round fast-forward (see Run); the default is
	// on, and WithIdleFastForward(false) restores literal round-by-round
	// execution for A/B testing.
	ffOff bool

	workers int
	rng     *rand.Rand

	// tracer, when non-nil, receives one RoundSample per simulated round
	// and per analytically-charged primitive. Disabled tracing costs one
	// nil check per round.
	tracer trace.Sink

	// obs, when non-nil, publishes live throughput counters and level
	// gauges into a metrics registry (WithMetrics); like the tracer it is
	// strictly observational and costs one nil check per round when off.
	obs *obsHooks

	// topoBridge caches the compact bridge Topo() hands out for
	// graph-backed simulators, invalidated when the graph changes shape.
	topoBridge               *graph.CSR
	topoBridgeN, topoBridgeM int

	// CSR index over directed edges, compiled by ensureTopology and
	// rebuilt only when the adjacency changes shape (topoN/topoM mismatch).
	topoN, topoM int
	outStart     []int32 // per sender: offsets into outTo
	outTo        []int32 // destinations, ascending per sender, deduplicated
	inStart      []int32 // per destination: offsets into inEdges
	inEdges      []int32 // incoming directed edge ids, ascending-sender order
	inPos        []int32 // directed edge id -> its slot in inEdges

	// Per-directed-edge queues plus the dirty-destination bookkeeping:
	// dirtyIn's region [inStart[v], inStart[v]+dirtyCnt[v]) lists the
	// inEdges slots of v's currently backlogged incoming edges.
	queues   []edgeQueue
	dirtyIn  []int32
	dirtyCnt []int32

	// Sharded delivery worklists: shard sh owns the contiguous destination
	// range [sh*shardBlock, (sh+1)*shardBlock). Cur is this round's dirty
	// destinations, Nxt collects carried backlog for the next round, Recv
	// the destinations that received; Msgs/Words are per-shard counters.
	shardBlock int
	shardCur   [][]int32
	shardNxt   [][]int32
	shardRecv  [][]int32
	shardMsgs  []int64
	shardWords []int64

	// Epoch-stamped scratch recycled across rounds: nextStamp[v] == epoch
	// marks v as already collected into the next active list. ctxs,
	// actList and nextList are the reusable context pool and active lists
	// (int32 vertex ids — half the footprint of the O(n) worklists).
	epoch     int64
	nextStamp []int64
	ctxs      []Ctx
	actList   []int32
	nextList  []int32

	// Fault injection (WithFaults). faults stays nil for an empty plan, so
	// the clean hot path pays one nil check per round; when set, delivery
	// runs through drainDstFaulty. Fault decisions inside the sharded
	// delivery phase accumulate into per-shard counters and spike lists
	// (shardFault/shardSpike) and are merged serially after the barrier.
	// faultClock is the absolute round of the deliveries in flight; see
	// DESIGN.md §11 for the clock and determinism contract.
	faultPlan  *faults.Plan
	faults     *faults.Compiled
	faultCtr   faults.Counters
	faultBase  int64
	faultClock int64
	faultQ     []edgeFaultState // parallel to queues; nil without a plan
	shardFault []faults.Counters
	shardSpike [][]faults.Spike

	// Checkpoint/resume wiring (snapshot.go). ckpt, when non-nil, receives
	// the per-round mid-Run write hook; resumePending arms the next Run call
	// to continue a restored mid-Run execution at resumeRound.
	ckpt          *Checkpointer
	resumePending bool
	resumeRound   int
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithWorkers sets the number of goroutines executing each round.
func WithWorkers(w int) Option {
	return func(s *Simulator) {
		if w > 0 {
			s.workers = w
		}
	}
}

// WithShards sets the number of parallel execution shards. A shard owns a
// contiguous vertex range — those vertices' handler steps, inboxes, dirty
// worklists and payload arena — and cross-shard traffic merges at the
// per-round barrier in canonical (destination, sender, edge-sequence) order,
// so every observable quantity is byte-identical at any shard count (pinned
// by TestRunWorkerCountInvariance and the core trace test). Shards and the
// step-phase worker pool are the same partition; WithShards and WithWorkers
// are therefore aliases, with WithShards the vocabulary of the scale
// tooling (routebench -shards).
func WithShards(p int) Option { return WithWorkers(p) }

// WithSeed sets the seed of the simulator's deterministic RNG.
func WithSeed(seed int64) Option {
	return func(s *Simulator) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithDiameter overrides the hop-diameter bound used when charging
// broadcast rounds (defaults to a 2x eccentricity upper bound from vertex 0).
func WithDiameter(d int) Option {
	return func(s *Simulator) {
		if d >= 0 {
			s.d = d
		}
	}
}

// WithTrace attaches a telemetry sink receiving per-round samples. Pass a
// *trace.Recorder; a nil sink leaves tracing disabled.
func WithTrace(t trace.Sink) Option {
	return func(s *Simulator) { s.tracer = t }
}

// WithEdgeCapacity sets the per-round word budget of each directed edge.
// Zero or negative means unlimited (a convenient "LOCAL model" switch for
// tests and ablations).
func WithEdgeCapacity(c int) Option {
	return func(s *Simulator) { s.capacity = c }
}

// WithFaults installs a deterministic fault plan (see internal/faults): the
// engine consults it at delivery time to drop, delay, duplicate, or sever
// messages and to keep crashed vertices from executing. A nil or empty plan
// leaves the simulator on its zero-overhead clean path, byte-identical to a
// simulator constructed without this option. Equal plans (including seeds)
// reproduce the exact same fault pattern regardless of worker count.
func WithFaults(p *faults.Plan) Option {
	return func(s *Simulator) {
		if p == nil || p.Empty() {
			s.faultPlan = nil
			return
		}
		s.faultPlan = p
	}
}

// WithIdleFastForward toggles the idle-round fast-forward (default on):
// when no vertex is active and only capacity-paced backlog remains, the
// engine jumps the round counter to the next delivery round instead of
// simulating each empty round. All observable state - counters, delivery
// order, meters - is identical either way; only wall-clock work is skipped.
func WithIdleFastForward(on bool) Option {
	return func(s *Simulator) { s.ffOff = !on }
}

// New creates a simulator over communication graph g.
func New(g *graph.Graph, opts ...Option) *Simulator {
	s := &Simulator{
		g:        g,
		d:        1,
		capacity: DefaultEdgeCapacity,
		inbox:    make([][]Message, g.N()),
		meters:   make([]Meter, g.N()),
		workers:  runtime.GOMAXPROCS(0),
		rng:      rand.New(rand.NewSource(1)),
	}
	if g.N() > 0 {
		if ub, err := g.HopRadiusUpperBound(); err == nil {
			s.d = ub
		}
	}
	if s.d < 1 {
		s.d = 1
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewTopo creates a simulator directly over a compact read-only topology
// (typically a *graph.CSR from a streaming generator). No *graph.Graph is
// ever materialised: handlers iterate adjacency through Topo, and Graph()
// returns nil. Everything else — options, determinism, accounting — matches
// New exactly, and for the same adjacency the two constructors produce
// byte-identical runs.
func NewTopo(t graph.Topology, opts ...Option) *Simulator {
	s := &Simulator{
		topo:     t,
		d:        1,
		capacity: DefaultEdgeCapacity,
		inbox:    make([][]Message, t.N()),
		meters:   make([]Meter, t.N()),
		workers:  runtime.GOMAXPROCS(0),
		rng:      rand.New(rand.NewSource(1)),
	}
	if t.N() > 0 {
		if ub, err := graph.TopoHopRadiusUpperBound(t); err == nil {
			s.d = ub
		}
	}
	if s.d < 1 {
		s.d = 1
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Graph returns the communication graph, or nil for a topology-backed
// simulator (NewTopo). Handler code should prefer Topo, which works for
// both; Graph remains for reference paths (Dijkstra, baselines) that need
// the mutable structure.
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Topo returns the read-only adjacency of the communication graph. For a
// topology-backed simulator this is the topology it was built over; for a
// graph-backed one it is a compact bridge compiled on first use and
// refreshed if the graph changes shape (same heuristic as the engine's
// directed-edge index). The per-vertex neighbor order equals
// Graph.Neighbors order, so handlers iterating either surface produce
// byte-identical message streams.
func (s *Simulator) Topo() graph.Topology {
	if s.topo != nil {
		return s.topo
	}
	if s.topoBridge == nil || s.topoBridgeN != s.g.N() || s.topoBridgeM != s.g.M() {
		s.topoBridge = graph.FromGraph(s.g)
		s.topoBridgeN, s.topoBridgeM = s.g.N(), s.g.M()
	}
	return s.topoBridge
}

// N returns the number of processors.
func (s *Simulator) N() int {
	if s.g != nil {
		return s.g.N()
	}
	return s.topo.N()
}

// Diameter returns the hop-diameter bound used for broadcast accounting.
func (s *Simulator) Diameter() int { return s.d }

// Shards returns the number of parallel execution shards (== the worker
// pool width; see WithShards).
func (s *Simulator) Shards() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// Rounds returns the total number of rounds charged so far.
func (s *Simulator) Rounds() int64 { return s.rounds }

// Messages returns the total number of messages delivered so far.
func (s *Simulator) Messages() int64 { return s.messages }

// Words returns the total number of words carried by delivered messages.
func (s *Simulator) Words() int64 { return s.words }

// Mem returns vertex v's memory meter.
func (s *Simulator) Mem(v int) *Meter { return &s.meters[v] }

// PeakMemory returns the maximum peak memory (in words) over all vertices.
func (s *Simulator) PeakMemory() int64 {
	var mx int64
	for i := range s.meters {
		if p := s.meters[i].Peak(); p > mx {
			mx = p
		}
	}
	return mx
}

// AvgPeakMemory returns the mean per-vertex peak memory in words.
func (s *Simulator) AvgPeakMemory() float64 {
	if len(s.meters) == 0 {
		return 0
	}
	var t int64
	for i := range s.meters {
		t += s.meters[i].Peak()
	}
	return float64(t) / float64(len(s.meters))
}

// FaultsEnabled reports whether a non-empty fault plan is installed.
// Handler packages use it to allocate duplicate-suppression state only when
// re-delivery is actually possible.
func (s *Simulator) FaultsEnabled() bool { return s.faultPlan != nil }

// FaultCounters returns the cumulative fault-injection tallies (zero when no
// plan is installed or no fault has fired).
func (s *Simulator) FaultCounters() faults.Counters { return s.faultCtr }

// ensureFaults lazily compiles the installed fault plan against the current
// vertex count; returns nil (and stays on the clean path) without a plan.
func (s *Simulator) ensureFaults() *faults.Compiled {
	if s.faultPlan == nil {
		return nil
	}
	if s.faults == nil {
		s.faults = faults.Compile(s.faultPlan, s.N())
		if s.faults == nil { // plan turned out empty
			s.faultPlan = nil
			return nil
		}
		shards := s.workers
		if shards < 1 {
			shards = 1
		}
		s.shardFault = make([]faults.Counters, shards)
		s.shardSpike = make([][]faults.Spike, shards)
	}
	// Callers run ensureTopology first, so queues is current here; track it
	// if the graph grew between Runs.
	if len(s.faultQ) != len(s.queues) {
		s.faultQ = make([]edgeFaultState, len(s.queues))
	}
	return s.faults
}

// Rand returns the simulator's deterministic RNG. Single-threaded phases
// only; per-vertex code should use DeriveRand.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// DeriveRand returns a fresh RNG for vertex v, seeded deterministically and
// independently of the simulator RNG stream position.
func (s *Simulator) DeriveRand(v int) *rand.Rand {
	return rand.New(rand.NewSource(int64(v)*0x9E3779B9 + 0x1234567))
}

// AddRounds charges extra rounds for phases accounted analytically.
func (s *Simulator) AddRounds(k int64) {
	if s.resumePending {
		panic("congest: mid-run checkpoint resume pending; the next simulator primitive must be Run")
	}
	if k > 0 {
		s.rounds += k
		if s.tracer != nil {
			s.emitSample(s.rounds, trace.KindAnalytic, k, 0, 0, 0, faults.Counters{})
		}
		s.obsSyncAll()
	}
}

// meterStats scans all meters: the max windowed instantaneous level (spikes
// included; windows reset) and the mean persistent level. Only called with
// tracing enabled.
func (s *Simulator) meterStats() (int64, float64) {
	var mx, sum int64
	for i := range s.meters {
		if w := s.meters[i].SampleWindow(); w > mx {
			mx = w
		}
		sum += s.meters[i].Current()
	}
	if len(s.meters) == 0 {
		return 0, 0
	}
	return mx, float64(sum) / float64(len(s.meters))
}

// emitSample builds and delivers one RoundSample; callers guard s.tracer.
// fd carries the interval's fault-counter deltas (zero without a plan, so
// the omitempty fields keep clean exports v1-shaped).
func (s *Simulator) emitSample(round int64, kind string, rounds int64, active int, msgs, words int64, fd faults.Counters) {
	mx, mean := s.meterStats()
	s.tracer.RoundSample(trace.RoundSample{
		Round:      round,
		Rounds:     rounds,
		Kind:       kind,
		Active:     active,
		Messages:   msgs,
		Words:      words,
		Backlog:    s.queueBacklog(),
		MemMax:     mx,
		MemMean:    mean,
		Dropped:    fd.Dropped,
		Retried:    fd.Retried,
		Lost:       fd.Lost,
		Duplicated: fd.Duplicated,
		Discarded:  fd.Discarded,
	})
}

// Ctx is the per-vertex, per-round execution context handed to StepFuncs.
// Contexts are pooled by the engine and recycled across rounds.
type Ctx struct {
	sim     *Simulator
	v       int
	round   int
	in      []Message
	outEdge []int32 // out-edges this step transitioned from empty to backed
	extBuf  []uint64
	wake    bool
	// arena is the payload arena of the shard executing this step — the
	// serial arena on the serial path, the owning worker's shardArena slot
	// on the parallel path — so Ext clones in Send never contend.
	arena *wordArena
}

// Round returns the index of the current round within the active Run.
func (c *Ctx) Round() int { return c.round }

// In returns the messages delivered to this vertex at the start of the
// round. The slice is owned by the engine; process it streaming.
func (c *Ctx) In() []Message { return c.in }

// Mem returns this vertex's memory meter.
func (c *Ctx) Mem() *Meter { return c.sim.Mem(c.v) }

// Wake keeps this vertex scheduled next round even if it receives nothing.
func (c *Ctx) Wake() { c.wake = true }
