package congest

// Tests of the round engine itself: worker-count invariance of everything a
// step function can observe, and the edge-capacity pacing semantics (large
// messages cross in ceil(Words/capacity) rounds, FIFO per edge, unlimited
// mode). These pin down the engine contract that the CSR queue layout and
// sharded delivery must preserve; the end-to-end counterpart over a full
// construction is core.TestBuildTraceByteIdentical.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"lowmemroute/internal/graph"
)

// rcvd is one observed delivery: everything about a message a step function
// can see, plus when it saw it.
type rcvd struct {
	Round, From, Words int
	Payload            Payload
}

// TestRunWorkerCountInvariance runs the same flood workload at several
// worker-pool widths and requires identical counters, identical per-vertex
// meter peaks, and — the strong condition — identical per-vertex delivery
// logs: every vertex sees the same messages in the same order in the same
// rounds regardless of how delivery was sharded.
func TestRunWorkerCountInvariance(t *testing.T) {
	const (
		side        = 12 // 144 vertices: well above the serial threshold
		floodRounds = 6
	)
	type result struct {
		rounds, messages, words int64
		peaks                   []int64
		logs                    [][]rcvd
	}
	runOnce := func(workers int) result {
		g := graph.Torus(side, side, graph.UnitWeights, rand.New(rand.NewSource(3)))
		s := New(g, WithWorkers(workers))
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		logs := make([][]rcvd, g.N())
		s.Run(all, floodRounds+1, func(v int, ctx *Ctx) {
			// Each vertex owns logs[v]; step parallelism never races here.
			for _, m := range ctx.In() {
				logs[v] = append(logs[v], rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
			}
			if ctx.Round() < floodRounds {
				for _, nb := range g.Neighbors(v) {
					// Payload identifies the send event; Words varies so the
					// capacity pacer splits some messages across rounds.
					ctx.Send(nb.To, Payload{W0: IntWord(v*1000 + ctx.Round())}, 1+(v+nb.To+ctx.Round())%7)
				}
				ctx.Wake()
			}
		})
		res := result{rounds: s.Rounds(), messages: s.Messages(), words: s.Words(), logs: logs}
		res.peaks = make([]int64, g.N())
		for v := 0; v < g.N(); v++ {
			res.peaks[v] = s.Mem(v).Peak()
		}
		return res
	}

	base := runOnce(1)
	if base.messages == 0 {
		t.Fatal("workload sent no messages")
	}
	for _, workers := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := runOnce(workers)
			if got.rounds != base.rounds || got.messages != base.messages || got.words != base.words {
				t.Fatalf("counters differ from workers=1: rounds %d vs %d, messages %d vs %d, words %d vs %d",
					got.rounds, base.rounds, got.messages, base.messages, got.words, base.words)
			}
			if !reflect.DeepEqual(got.peaks, base.peaks) {
				t.Fatalf("per-vertex meter peaks differ from workers=1")
			}
			for v := range got.logs {
				if !reflect.DeepEqual(got.logs[v], base.logs[v]) {
					t.Fatalf("vertex %d delivery log differs from workers=1:\nworkers=1: %v\nworkers=%d: %v",
						v, base.logs[v], workers, got.logs[v])
				}
			}
		})
	}
}

// TestPacingLargeMessage checks the bandwidth rule: a message of
// Words > capacity occupies its edge for ceil(Words/capacity) consecutive
// rounds and becomes visible to the receiver one round after the last
// transmission round.
func TestPacingLargeMessage(t *testing.T) {
	cases := []struct {
		capacity, words int
	}{
		{capacity: 4, words: 10}, // ceil(10/4) = 3 rounds on the wire
		{capacity: 4, words: 8},  // exact multiple: 2 rounds
		{capacity: 4, words: 1},  // small message: 1 round
		{capacity: 1, words: 5},  // unit capacity: 5 rounds
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("cap=%d,words=%d", tc.capacity, tc.words), func(t *testing.T) {
			g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
			s := New(g, WithEdgeCapacity(tc.capacity))
			gotRound := -1
			s.Run([]int{0}, 100, func(v int, ctx *Ctx) {
				if v == 0 && ctx.Round() == 0 {
					ctx.Send(1, Payload{}, tc.words)
				}
				if v == 1 && len(ctx.In()) > 0 {
					gotRound = ctx.Round()
				}
			})
			wire := (tc.words + tc.capacity - 1) / tc.capacity
			if want := wire; gotRound != want {
				t.Fatalf("message of %d words over capacity-%d edge arrived in round %d, want round %d (ceil(%d/%d) transmission rounds)",
					tc.words, tc.capacity, gotRound, want, tc.words, tc.capacity)
			}
		})
	}
}

// TestPacingFIFOPerEdge checks that a backlogged edge stays FIFO: a large
// message sent first is delivered before any message sent after it on the
// same edge, even when the later message is small enough to fit in an
// earlier round's leftover budget.
func TestPacingFIFOPerEdge(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithEdgeCapacity(4))
	var order []rcvd
	s.Run([]int{0}, 100, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			ctx.Send(1, Payload{W0: 1}, 10) // "big": occupies rounds 0..2
			ctx.Send(1, Payload{W0: 2}, 1)  // "small": would fit in round 0's budget, must wait
			ctx.Send(1, Payload{W0: 3}, 3)  // "second": fits round 2's leftover after big+small
		}
		for _, m := range ctx.In() {
			order = append(order, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
		}
	})
	want := []rcvd{
		// big finishes in transmission round 2 (words 4+4+2) leaving budget 2;
		// small (1 word) fits the same round; second (3 words) does not and
		// crosses in round 3.
		{Round: 3, From: 0, Words: 10, Payload: Payload{W0: 1}},
		{Round: 3, From: 0, Words: 1, Payload: Payload{W0: 2}},
		{Round: 4, From: 0, Words: 3, Payload: Payload{W0: 3}},
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order:\n got %v\nwant %v", order, want)
	}
}

// TestPacingUnlimitedCapacity checks the capacity <= 0 "LOCAL model" switch:
// arbitrarily large messages cross in one round.
func TestPacingUnlimitedCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		capacity := capacity
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
			s := New(g, WithEdgeCapacity(capacity))
			var got []rcvd
			s.Run([]int{0}, 10, func(v int, ctx *Ctx) {
				if v == 0 && ctx.Round() == 0 {
					ctx.Send(1, Payload{W0: 1}, 1_000_000) // "huge"
					ctx.Send(1, Payload{W0: 2}, 1)         // "tail"
				}
				for _, m := range ctx.In() {
					got = append(got, rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload})
				}
			})
			want := []rcvd{
				{Round: 1, From: 0, Words: 1_000_000, Payload: Payload{W0: 1}},
				{Round: 1, From: 0, Words: 1, Payload: Payload{W0: 2}},
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("unlimited-capacity delivery:\n got %v\nwant %v", got, want)
			}
		})
	}
}
