package congest

import (
	"math"
	"math/rand"
	"testing"

	"lowmemroute/internal/graph"
)

func TestWordHelpersRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, -1, -2, 1 << 40, -(1 << 40), math.MaxInt64 >> 1} {
		if got := WordInt(IntWord(v)); got != v {
			t.Fatalf("IntWord roundtrip: %d -> %d", v, got)
		}
	}
	for _, f := range []float64{0, 1.5, -3.25, math.Inf(1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if got := WordFloat(FloatWord(f)); got != f {
			t.Fatalf("FloatWord roundtrip: %v -> %v", f, got)
		}
	}
	if !WordBool(BoolWord(true)) || WordBool(BoolWord(false)) {
		t.Fatal("BoolWord roundtrip")
	}
}

// TestExtPayloadRelayChain sends a variable-length tail down a path, each hop
// appending its own id before relaying. Send's copy-on-send semantics mean
// the received Ext (engine-owned) and the Ctx.Ext scratch (reused every hop)
// are both safe to reuse immediately after Send.
func TestExtPayloadRelayChain(t *testing.T) {
	const n = 5
	const kindTrail PayloadKind = 9
	g := graph.Path(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	var final []uint64
	s.Run([]int{0}, 20, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			buf := ctx.Ext(1)
			buf[0] = IntWord(0)
			ctx.Send(1, Payload{Kind: kindTrail, W0: 1, Ext: buf}, 2)
			return
		}
		for _, m := range ctx.In() {
			if m.Payload.Kind != kindTrail {
				continue
			}
			k := int(m.Payload.W0)
			buf := ctx.Ext(k + 1)
			copy(buf, m.Payload.Ext)
			buf[k] = IntWord(v)
			if v == n-1 {
				final = append([]uint64(nil), buf...)
				continue
			}
			ctx.Send(v+1, Payload{Kind: kindTrail, W0: uint64(k + 1), Ext: buf}, k+2)
			// The engine copied buf on Send: clobbering the scratch now must
			// not corrupt the in-flight message.
			for i := range buf {
				buf[i] = ^uint64(0)
			}
		}
	})
	want := []uint64{IntWord(0), IntWord(1), IntWord(2), IntWord(3), IntWord(4)}
	if len(final) != len(want) {
		t.Fatalf("final trail %v, want %v", final, want)
	}
	for i := range want {
		if final[i] != want[i] {
			t.Fatalf("trail[%d]=%d want %d (full: %v)", i, final[i], want[i], final)
		}
	}
}

// TestRelayReceivedPayloadVerbatim relays m.Payload itself (the common
// forward-to-children pattern): Send re-clones the engine-owned Ext, so the
// same received payload can be fanned out and still be recycled safely.
func TestRelayReceivedPayloadVerbatim(t *testing.T) {
	const kindList PayloadKind = 3
	g := graph.Star(4, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	got := make([][]uint64, 4)
	s.Run([]int{1}, 10, func(v int, ctx *Ctx) {
		switch {
		case v == 1 && ctx.Round() == 0:
			buf := ctx.Ext(3)
			buf[0], buf[1], buf[2] = 7, 8, 9
			ctx.Send(0, Payload{Kind: kindList, Ext: buf}, 4)
		case v == 0:
			for _, m := range ctx.In() {
				ctx.Send(2, m.Payload, m.Words)
				ctx.Send(3, m.Payload, m.Words)
			}
		default:
			for _, m := range ctx.In() {
				got[v] = append([]uint64(nil), m.Payload.Ext...)
			}
		}
	})
	for _, v := range []int{2, 3} {
		if len(got[v]) != 3 || got[v][0] != 7 || got[v][1] != 8 || got[v][2] != 9 {
			t.Fatalf("vertex %d received %v, want [7 8 9]", v, got[v])
		}
	}
}

// TestExtTrafficSteadyStateAllocFree pins the arena contract: once the free
// lists are warm, a Run that ships variable-length payloads performs no
// allocation.
func TestExtTrafficSteadyStateAllocFree(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithWorkers(1))
	const kindBlob PayloadKind = 5
	initial := []int{0}
	step := func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			buf := ctx.Ext(6)
			for i := range buf {
				buf[i] = uint64(i)
			}
			ctx.Send(1, Payload{Kind: kindBlob, Ext: buf}, 7)
			return
		}
		for _, m := range ctx.In() {
			if m.Payload.Kind == kindBlob && v < 7 {
				ctx.Send(v+1, m.Payload, m.Words)
			}
		}
	}
	run := func() { s.Run(initial, 40, step) }
	for i := 0; i < 3; i++ {
		run() // warm queues, inboxes, and arena size classes
	}
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("steady-state Run with Ext payloads allocates %v/op, want 0", allocs)
	}
}

// TestDrainAllRecyclesExt covers the maxRounds cutoff path: undelivered Ext
// chunks in queue backlogs return to the arena and later Runs still see
// intact payload data.
func TestDrainAllRecyclesExt(t *testing.T) {
	const kindBlob PayloadKind = 6
	g := graph.Path(2, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g, WithEdgeCapacity(1))
	// Phase 1: a 10-word ext message over a capacity-1 edge, cut off at 3
	// rounds - the chunk is stranded in the queue and must be drained.
	s.Run([]int{0}, 3, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			buf := ctx.Ext(9)
			for i := range buf {
				buf[i] = 0xAA
			}
			ctx.Send(1, Payload{Kind: kindBlob, Ext: buf}, 10)
		}
	})
	// Phase 2: same-size message must arrive intact (the recycled chunk is
	// fully overwritten by copy-on-send).
	var got []uint64
	s.Run([]int{0}, 100, func(v int, ctx *Ctx) {
		if v == 0 && ctx.Round() == 0 {
			buf := ctx.Ext(9)
			for i := range buf {
				buf[i] = uint64(100 + i)
			}
			ctx.Send(1, Payload{Kind: kindBlob, Ext: buf}, 10)
		}
		if v == 1 {
			for _, m := range ctx.In() {
				got = append([]uint64(nil), m.Payload.Ext...)
			}
		}
	})
	if len(got) != 9 {
		t.Fatalf("phase 2 payload length %d, want 9", len(got))
	}
	for i, w := range got {
		if w != uint64(100+i) {
			t.Fatalf("phase 2 payload word %d = %d, want %d", i, w, 100+i)
		}
	}
}
