package congest

// Checkpoint/resume semantics: mid-Run resume equivalence (the strong
// condition — a run interrupted at an arbitrary round boundary and resumed
// from its checkpoint is indistinguishable from one that was never
// interrupted, at every shard count, clean and under faults), unit-granularity
// skip/restore with a registered provider, and the error paths a resume must
// fail loudly on (shape mismatch, meta mismatch, corrupt file, missing
// section, unreached unit cursor).

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lowmemroute/internal/faults"
	"lowmemroute/internal/graph"
	"lowmemroute/internal/trace"
)

// snapRun captures everything observable about a flood run: the engine
// counters, fault tallies, per-vertex meter state, and the full per-vertex
// delivery logs.
type snapRun struct {
	executed                int
	rounds, messages, words int64
	ctr                     faults.Counters
	cur, peak               []int64
	logs                    [][]rcvd
}

// runSnapshotFlood runs the torus flood workload (stateless handler: behaviour
// depends only on the vertex, the round, and the inbox — exactly the contract
// a mid-Run checkpoint needs) for maxRounds rounds, optionally under a
// checkpointer and a fault plan. Ext payloads exercise the arena-backed
// message tails through the snapshot encode/restore.
func runSnapshotFlood(t *testing.T, workers, maxRounds int, ck *Checkpointer, plan *faults.Plan) snapRun {
	t.Helper()
	const (
		side        = 12
		floodRounds = 10
	)
	g := graph.Torus(side, side, graph.UnitWeights, rand.New(rand.NewSource(3)))
	opts := []Option{WithShards(workers)}
	if plan != nil {
		opts = append(opts, WithFaults(plan))
	}
	s := New(g, opts...)
	if ck != nil {
		ck.MidRun(true)
		if err := ck.Attach(s); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	logs := make([][]rcvd, g.N())
	executed := s.Run(all, maxRounds, func(v int, ctx *Ctx) {
		for _, m := range ctx.In() {
			r := rcvd{Round: ctx.Round(), From: m.From, Words: m.Words, Payload: m.Payload}
			// The inbox Ext is recycled after the round; log a copy.
			r.Payload.Ext = append([]uint64(nil), m.Payload.Ext...)
			logs[v] = append(logs[v], r)
		}
		if ctx.Round() < floodRounds {
			for _, nb := range g.Neighbors(v) {
				ext := ctx.Ext(2)
				ext[0], ext[1] = uint64(v), uint64(ctx.Round())
				ctx.Send(nb.To, Payload{Kind: 1, W0: IntWord(v*1000 + ctx.Round()), Ext: ext},
					1+(v+nb.To+ctx.Round())%7)
			}
			ctx.Wake()
		}
	})
	res := snapRun{
		executed: executed,
		rounds:   s.Rounds(), messages: s.Messages(), words: s.Words(),
		ctr:  s.FaultCounters(),
		logs: logs,
	}
	for v := 0; v < g.N(); v++ {
		res.cur = append(res.cur, s.Mem(v).Current())
		res.peak = append(res.peak, s.Mem(v).Peak())
	}
	return res
}

// TestRunResumeEquivalence is the mid-Run checkpoint gate: run the flood to
// quiescence straight through, then again truncated at an interior round with
// a checkpoint cadence that lands exactly one snapshot at the cut, then resume
// that snapshot on a fresh simulator. Counters, fault tallies, meter state,
// and the post-cut delivery logs must all match the uninterrupted run — at
// shard widths 1 and 4, clean and under a drop/delay/duplicate plan.
func TestRunResumeEquivalence(t *testing.T) {
	const (
		cut   = 5  // interrupt after 5 executed rounds
		total = 60 // past quiescence for the 10-round flood
	)
	plans := []struct {
		name string
		plan *faults.Plan
	}{
		{"clean", nil},
		{"faulty", &faults.Plan{Seed: 9, Drop: 0.1, Delay: 1, Duplicate: 0.1}},
	}
	for _, tc := range plans {
		for _, workers := range []int{1, 4} {
			tc, workers := tc, workers
			t.Run(fmt.Sprintf("%s/shards=%d", tc.name, workers), func(t *testing.T) {
				ref := runSnapshotFlood(t, workers, total, nil, tc.plan)
				if ref.executed >= total || ref.executed <= cut {
					t.Fatalf("workload executed %d rounds; need quiescence inside (%d, %d) for a meaningful cut", ref.executed, cut, total)
				}
				if tc.plan != nil && !ref.ctr.Any() {
					t.Fatal("fault plan injected nothing; faulty variant is vacuous")
				}

				path := filepath.Join(t.TempDir(), "flood.ckpt")
				ckw := NewCheckpointer(path, cut)
				_ = runSnapshotFlood(t, workers, cut, ckw, tc.plan)
				if err := ckw.Err(); err != nil {
					t.Fatalf("checkpoint write: %v", err)
				}

				ckr, err := ResumeCheckpointer(path, cut)
				if err != nil {
					t.Fatalf("ResumeCheckpointer: %v", err)
				}
				got := runSnapshotFlood(t, workers, total, ckr, tc.plan)

				if got.executed != ref.executed {
					t.Fatalf("resumed run executed %d rounds, straight run %d", got.executed, ref.executed)
				}
				if got.rounds != ref.rounds || got.messages != ref.messages || got.words != ref.words {
					t.Fatalf("counters differ after resume: rounds %d vs %d, messages %d vs %d, words %d vs %d",
						got.rounds, ref.rounds, got.messages, ref.messages, got.words, ref.words)
				}
				if got.ctr != ref.ctr {
					t.Fatalf("fault counters differ after resume: %+v vs %+v", got.ctr, ref.ctr)
				}
				if !reflect.DeepEqual(got.cur, ref.cur) || !reflect.DeepEqual(got.peak, ref.peak) {
					t.Fatal("per-vertex meter state differs after resume")
				}
				// The resumed run only observes rounds >= cut; the straight
				// run's log suffix must match it exactly.
				for v := range ref.logs {
					var tail []rcvd
					for _, r := range ref.logs[v] {
						if r.Round >= cut {
							tail = append(tail, r)
						}
					}
					if !reflect.DeepEqual(tail, got.logs[v]) {
						t.Fatalf("vertex %d post-cut delivery log differs:\nstraight: %v\nresumed:  %v", v, tail, got.logs[v])
					}
				}
			})
		}
	}
}

// sumProvider is a minimal CkptProvider: per-vertex accumulators a handler
// mutates, standing in for the hopset/treeroute durable state.
type sumProvider struct{ vals []uint64 }

func (p *sumProvider) CkptSection() string { return "test.sum" }
func (p *sumProvider) AppendCkpt(dst []uint64) []uint64 {
	dst = append(dst, uint64(len(p.vals)))
	return append(dst, p.vals...)
}
func (p *sumProvider) RestoreCkpt(words []uint64) error {
	r := trace.NewWordReader(words)
	p.vals = append(p.vals[:0], r.Take(r.Int())...)
	return r.Done()
}

// runUnitBuild is a two-phase "build" over a path graph: phase 1 floods and
// accumulates into the provider, phase 2 reseeds from the accumulated values.
// Phase 2's output depends on phase 1's provider state AND the engine's meter
// history, so a resume that restores either one incompletely cannot match.
// stopAfter truncates the build after that many phases (the "crash").
func runUnitBuild(t *testing.T, ck *Checkpointer, stopAfter int) ([]uint64, snapRun) {
	t.Helper()
	const n = 8
	g := graph.Path(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
	s := New(g)
	if err := ck.Attach(s); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	p := &sumProvider{vals: make([]uint64, n)}
	if err := ck.Register(p); err != nil {
		t.Fatalf("Register: %v", err)
	}
	all := make([]int, n)
	for v := range all {
		all[v] = v
	}
	if !ck.UnitDone("p1") {
		s.Run(all, 6, func(v int, ctx *Ctx) {
			for _, m := range ctx.In() {
				p.vals[v] += m.Payload.W0
			}
			if ctx.Round() < 3 {
				for _, nb := range g.Neighbors(v) {
					ctx.Send(nb.To, Payload{W0: uint64(v*7 + ctx.Round() + 1)}, 1+v%3)
				}
				ctx.Wake()
			}
		})
		ck.Mark("p1")
	}
	if stopAfter >= 2 && !ck.UnitDone("p2") {
		s.Run(all, 6, func(v int, ctx *Ctx) {
			for _, m := range ctx.In() {
				p.vals[v] = p.vals[v]*31 + m.Payload.W0
			}
			if ctx.Round() == 0 {
				for _, nb := range g.Neighbors(v) {
					ctx.Send(nb.To, Payload{W0: p.vals[v] + 1}, 1)
				}
			}
		})
		ck.Mark("p2")
	}
	res := snapRun{rounds: s.Rounds(), messages: s.Messages(), words: s.Words()}
	for v := 0; v < n; v++ {
		res.cur = append(res.cur, s.Mem(v).Current())
		res.peak = append(res.peak, s.Mem(v).Peak())
	}
	return p.vals, res
}

// TestUnitCheckpointResume pins the unit-granularity path: a build
// interrupted between phases resumes by skipping the completed unit,
// restoring the engine and provider sections at the cursor, and running only
// the remaining phase — with results identical to the uninterrupted build.
// Resuming from the final checkpoint skips everything.
func TestUnitCheckpointResume(t *testing.T) {
	refVals, refRun := runUnitBuild(t, nil, 2) // nil Checkpointer: plain build

	dir := t.TempDir()
	p1 := filepath.Join(dir, "after-p1.ckpt")
	ckw := NewCheckpointer(p1, 0)
	if err := ckw.SetMeta("workload", "unit-build"); err != nil {
		t.Fatal(err)
	}
	_, _ = runUnitBuild(t, ckw, 1) // "crash" after phase 1
	if err := ckw.Err(); err != nil {
		t.Fatalf("interrupted build: %v", err)
	}

	ckr, err := ResumeCheckpointer(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckr.SetMeta("workload", "unit-build"); err != nil {
		t.Fatal(err)
	}
	gotVals, gotRun := runUnitBuild(t, ckr, 2)
	if err := ckr.Err(); err != nil {
		t.Fatalf("resumed build: %v", err)
	}
	if !reflect.DeepEqual(gotVals, refVals) {
		t.Fatalf("provider state after resume: %v, straight build: %v", gotVals, refVals)
	}
	if !reflect.DeepEqual(gotRun, refRun) {
		t.Fatalf("engine state after resume: %+v, straight build: %+v", gotRun, refRun)
	}

	// Full build with a checkpointer leaves a units=2 snapshot; resuming it
	// skips both phases and must still reproduce everything.
	p2 := filepath.Join(dir, "after-p2.ckpt")
	ckFull := NewCheckpointer(p2, 0)
	_, _ = runUnitBuild(t, ckFull, 2)
	if err := ckFull.Err(); err != nil {
		t.Fatal(err)
	}
	ckSkip, err := ResumeCheckpointer(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	skipVals, skipRun := runUnitBuild(t, ckSkip, 2)
	if err := ckSkip.Err(); err != nil {
		t.Fatalf("full-skip resume: %v", err)
	}
	if !reflect.DeepEqual(skipVals, refVals) || !reflect.DeepEqual(skipRun, refRun) {
		t.Fatal("resume from the final checkpoint diverged from the straight build")
	}
}

// TestCheckpointResumeErrors exercises every way a resume must fail loudly
// instead of silently diverging.
func TestCheckpointResumeErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	ck := NewCheckpointer(good, 3)
	if err := ck.SetMeta("family", "torus"); err != nil {
		t.Fatal(err)
	}
	_ = runSnapshotFlood(t, 2, 3, ck, nil)
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}

	newSim := func(n int, opts ...Option) *Simulator {
		g := graph.Path(n, graph.UnitWeights, rand.New(rand.NewSource(1)))
		return New(g, opts...)
	}

	t.Run("wrong-vertex-count", func(t *testing.T) {
		ckr, err := ResumeCheckpointer(good, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := ckr.Attach(newSim(10)); err == nil || !strings.Contains(err.Error(), "n=") {
			t.Fatalf("Attach on a 10-vertex simulator: err=%v, want vertex-count mismatch", err)
		}
	})

	t.Run("wrong-capacity", func(t *testing.T) {
		ckr, err := ResumeCheckpointer(good, 3)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Torus(12, 12, graph.UnitWeights, rand.New(rand.NewSource(3)))
		if err := ckr.Attach(New(g, WithEdgeCapacity(2))); err == nil || !strings.Contains(err.Error(), "capacity") {
			t.Fatalf("Attach under capacity 2: err=%v, want capacity mismatch", err)
		}
	})

	t.Run("meta-mismatch", func(t *testing.T) {
		ckr, err := ResumeCheckpointer(good, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := ckr.SetMeta("family", "grid"); err == nil || !strings.Contains(err.Error(), "family") {
			t.Fatalf("SetMeta(family, grid) against a torus checkpoint: err=%v, want mismatch", err)
		}
	})

	t.Run("corrupt-file", func(t *testing.T) {
		raw, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		bad := filepath.Join(dir, "corrupt.ckpt")
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 0x40
		if err := os.WriteFile(bad, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeCheckpointer(bad, 3); err == nil {
			t.Fatal("resuming a bit-flipped checkpoint file succeeded")
		}
	})

	t.Run("truncated-file", func(t *testing.T) {
		raw, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		bad := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeCheckpointer(bad, 3); err == nil {
			t.Fatal("resuming a truncated checkpoint file succeeded")
		}
	})

	t.Run("missing-engine-section", func(t *testing.T) {
		c := &trace.Checkpoint{Meta: map[string]string{"units": "1"}}
		c.AddSection("something.else", []uint64{1, 2, 3})
		bad := filepath.Join(dir, "no-engine.ckpt")
		if err := trace.WriteCheckpointFile(bad, c); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeCheckpointer(bad, 3); err == nil || !strings.Contains(err.Error(), EngineSection) {
			t.Fatalf("resume without an engine section: err=%v", err)
		}
	})

	t.Run("unreached-unit-cursor", func(t *testing.T) {
		// A quiescent checkpoint recording 2 completed units, resumed by a
		// run that only ever declares one: Err must flag the mismatch.
		p2 := filepath.Join(dir, "two-units.ckpt")
		ckw := NewCheckpointer(p2, 0)
		_, _ = runUnitBuild(t, ckw, 2)
		if err := ckw.Err(); err != nil {
			t.Fatal(err)
		}
		ckr, err := ResumeCheckpointer(p2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := ckr.Attach(newSim(8)); err != nil {
			t.Fatal(err)
		}
		if !ckr.UnitDone("p1") {
			t.Fatal("first unit of a units=2 checkpoint not skipped")
		}
		if err := ckr.Err(); err == nil || !strings.Contains(err.Error(), "completed units") {
			t.Fatalf("Err with an unreached cursor: %v", err)
		}
	})
}
