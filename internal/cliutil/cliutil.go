// Package cliutil holds the small flag-handling helpers shared by the
// routebench/treebench/routedemo commands: writing a trace recording in the
// chosen export format, starting the diagnostics HTTP server, and the
// periodic build-progress reporter.
package cliutil

import (
	"fmt"
	"os"

	"lowmemroute/internal/metrics"
	"lowmemroute/internal/obs"
	"lowmemroute/internal/trace"
)

// TraceFormats lists the values accepted by -trace-format.
const TraceFormats = "json|chrome|table"

// CheckTraceFormat rejects unknown -trace-format values. Call it before the
// run, so a typo fails in milliseconds instead of after minutes of
// simulation.
func CheckTraceFormat(format string) error {
	switch format {
	case "", "json", "chrome", "table":
		return nil
	default:
		return fmt.Errorf("unknown trace format %q (want %s)", format, TraceFormats)
	}
}

// WriteTrace writes rec to path in the given format: "json" (schema-versioned,
// machine-readable), "chrome" (trace_event JSON for chrome://tracing /
// Perfetto), or "table" (aligned text summary). Path "-" writes to stdout.
func WriteTrace(rec *trace.Recorder, path, format string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "", "json":
		return rec.WriteJSON(w)
	case "chrome":
		return rec.WriteChrome(w)
	case "table":
		_, err := fmt.Fprint(w, metrics.FormatTraceTable(rec.Export()))
		return err
	default:
		return fmt.Errorf("unknown trace format %q (want %s)", format, TraceFormats)
	}
}

// StartPprof starts the diagnostics HTTP server (net/http/pprof, a
// /debug/metrics runtime-metrics dump, and — when reg is non-nil — the
// live registry as Prometheus text format under /metrics) and prints where
// it is listening. The returned shutdown func closes the listener; CLIs
// that serve until exit may ignore it.
func StartPprof(addr string, reg *obs.Registry) (func() error, error) {
	bound, shutdown, err := trace.ServePprof(addr, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof/ /debug/metrics and /metrics\n", bound)
	return shutdown, nil
}
