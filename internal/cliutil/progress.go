package cliutil

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"lowmemroute/internal/obs"
)

// StartProgress launches a reporter goroutine that prints one line to w
// every interval: current construction phase, simulated rounds and
// delivered messages with their rates since the previous line, process
// heap size with its high-water mark, and a phase-based ETA. It reads only
// the registry and runtime.MemStats, so it observes a build without
// touching it. The returned stop func halts the reporter (idempotent,
// safe to call from the reporting goroutine's owner only).
func StartProgress(w io.Writer, reg *obs.Registry, interval time.Duration) (stop func()) {
	if reg == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		rounds := reg.Counter("congest_rounds_total")
		msgs := reg.Counter("congest_messages_total")
		start := time.Now()
		last := start
		var lastRounds, lastMsgs, heapHW int64
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				dt := now.Sub(last).Seconds()
				if dt <= 0 {
					dt = 1
				}
				r, m := rounds.Value(), msgs.Value()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				heap := int64(ms.HeapAlloc)
				if heap > heapHW {
					heapHW = heap
				}
				p := reg.Phase()
				phase := p.Name
				if phase == "" {
					phase = "-"
				}
				line := fmt.Sprintf("progress: phase=%s", phase)
				if p.Total > 0 {
					line += fmt.Sprintf(" (%d/%d)", p.Done, p.Total)
				}
				line += fmt.Sprintf(" rounds=%d (%.0f/s) msgs=%d (%.0f/s) heap=%s hw=%s",
					r, float64(r-lastRounds)/dt, m, float64(m-lastMsgs)/dt,
					formatBytes(heap), formatBytes(heapHW))
				if eta, ok := phaseETA(p, now.Sub(start)); ok {
					line += fmt.Sprintf(" eta~%s", eta.Round(time.Second))
				}
				fmt.Fprintln(w, line)
				last, lastRounds, lastMsgs = now, r, m
			}
		}
	}()
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-finished
	}
}

// phaseETA extrapolates the remaining wall time from the completed-phase
// fraction: crude (phases are not equal-cost), but it turns "is this
// n=10^6 build stuck?" into a number without instrumenting anything else.
func phaseETA(p obs.Phase, elapsed time.Duration) (time.Duration, bool) {
	if p.Total <= 0 || p.Done <= 0 || p.Done >= p.Total {
		return 0, false
	}
	perPhase := elapsed / time.Duration(p.Done)
	return perPhase * time.Duration(p.Total-p.Done), true
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
