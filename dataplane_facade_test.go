package lowmemroute

import (
	"testing"
)

// TestDataPlaneEquivalence pins the facade contract: Compile's flat-array
// walks are byte-identical to Scheme.Route, Config.DataPlane serves the
// same answers through Scheme.Route itself, and Rebuild keeps serving.
func TestDataPlaneEquivalence(t *testing.T) {
	net, err := Generate(ErdosRenyi, 72, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(net, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sdp, err := Build(net, Config{K: 3, Seed: 5, DataPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for u := 0; u < net.Nodes(); u++ {
		for v := 0; v < net.Nodes(); v++ {
			want, wantErr := s.Route(u, v)
			got, gotErr := dp.Route(u, v)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%d->%d: err %v vs %v", u, v, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if len(want.Nodes) != len(got.Nodes) || want.Weight != got.Weight {
				t.Fatalf("%d->%d: %v (%v) vs %v (%v)", u, v, want.Nodes, want.Weight, got.Nodes, got.Weight)
			}
			for i := range want.Nodes {
				if want.Nodes[i] != got.Nodes[i] {
					t.Fatalf("%d->%d: node %d differs", u, v, i)
				}
			}
			cfg, err := sdp.Route(u, v)
			if err != nil || len(cfg.Nodes) != len(want.Nodes) || cfg.Weight != want.Weight {
				t.Fatalf("%d->%d: Config.DataPlane route %v (%v, err %v) differs from %v (%v)",
					u, v, cfg.Nodes, cfg.Weight, err, want.Nodes, want.Weight)
			}
			var w float64
			buf, w, err = s.RouteAppend(u, v, buf[:0])
			if err != nil || w != want.Weight || len(buf) != len(want.Nodes) {
				t.Fatalf("%d->%d: RouteAppend %v (%v, err %v)", u, v, buf, w, err)
			}
		}
	}

	// Lookup/LookupBatch surface: the first hop of every routable pair must
	// be the second node of the full walk.
	dst := make([]Label, net.Nodes())
	for i := range dst {
		dst[i] = Label(i)
	}
	out := make([]NextHop, net.Nodes())
	if got := dp.LookupBatch(3, dst, out); got != net.Nodes() {
		t.Fatalf("LookupBatch made %d decisions", got)
	}
	for v, hop := range out {
		p, err := dp.Route(3, v)
		if err != nil {
			if hop.Next != -1 {
				t.Fatalf("3->%d: unroutable pair got hop %+v", v, hop)
			}
			continue
		}
		if v == 3 {
			if !hop.Arrived {
				t.Fatalf("self lookup: %+v", hop)
			}
			continue
		}
		if int(hop.Next) != p.Nodes[1] {
			t.Fatalf("3->%d: first hop %d, walk %v", v, hop.Next, p.Nodes)
		}
	}

	dp.Rebuild()
	if p, err := dp.Route(0, net.Nodes()-1); err == nil && len(p.Nodes) == 0 {
		t.Fatal("rebuilt data plane returned an empty path")
	}
}

// TestDataPlaneEquivalenceUnderCrash serves the scheme (the router now
// forwards from the compiled table), crashes a transit node, and checks
// that every pair whose clean compiled walk avoids the victim still
// delivers exactly that walk, undegraded — the compiled fast path and the
// degraded-mode machinery interfere with each other not at all.
func TestDataPlaneEquivalenceUnderCrash(t *testing.T) {
	net, err := Generate(ErdosRenyi, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(net, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	pn := s.Serve()
	defer pn.Close()

	// Pick the transit node that appears in the most clean walks.
	hits := make([]int, net.Nodes())
	for u := 0; u < net.Nodes(); u++ {
		for v := 0; v < net.Nodes(); v++ {
			p, err := dp.Route(u, v)
			if err != nil {
				continue
			}
			for _, x := range p.Nodes[1:max(len(p.Nodes)-1, 1)] {
				hits[x]++
			}
		}
	}
	victim := 0
	for v, h := range hits {
		if h > hits[victim] {
			victim = v
		}
	}
	pn.Crash(victim)

	checked := 0
	for u := 0; u < net.Nodes() && checked < 300; u++ {
		for v := 0; v < net.Nodes() && checked < 300; v++ {
			if u == victim || v == victim {
				continue
			}
			want, err := dp.Route(u, v)
			if err != nil {
				continue
			}
			touches := false
			for _, x := range want.Nodes {
				if x == victim {
					touches = true
					break
				}
			}
			if touches {
				continue
			}
			d, err := pn.Send(u, v)
			if err != nil {
				t.Fatalf("send %d->%d with %d down: %v", u, v, victim, err)
			}
			if d.Degraded {
				t.Fatalf("send %d->%d degraded though its walk avoids %d", u, v, victim)
			}
			if len(d.Nodes) != len(want.Nodes) {
				t.Fatalf("send %d->%d path %v, compiled walk %v", u, v, d.Nodes, want.Nodes)
			}
			for i := range want.Nodes {
				if d.Nodes[i] != want.Nodes[i] {
					t.Fatalf("send %d->%d path %v diverges from compiled walk %v", u, v, d.Nodes, want.Nodes)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no victim-avoiding pairs found")
	}
}
