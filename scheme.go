package lowmemroute

import (
	"fmt"
	"time"

	"lowmemroute/internal/congest"
	"lowmemroute/internal/core"
	"lowmemroute/internal/graph"
	"lowmemroute/internal/metrics"
	"lowmemroute/internal/obs"
	"lowmemroute/internal/router"
	"lowmemroute/internal/treeroute"
	"lowmemroute/internal/wire"
)

// Config configures Build.
type Config struct {
	// K is the stretch parameter: stretch is at most 4K-3+o(1), tables
	// shrink as Õ(n^{1/K}). K=1 gives exact shortest-path routing with
	// linear tables. Must be >= 1.
	K int
	// Epsilon is the approximation slack of the construction's high
	// levels (default 0.05; the o(1) stretch term grows with it).
	Epsilon float64
	// Seed drives all randomness; equal seeds give identical schemes.
	Seed int64
	// Trace, when non-nil, records per-phase spans and a per-round time
	// series during the build (see NewTracer). Tracing is observational:
	// the scheme and Report are identical with or without it.
	Trace *Tracer
	// Faults, when non-nil, injects the given deterministic fault schedule
	// into the simulated network: the construction then runs over lossy,
	// slow, duplicating, crashing links, and the Report's cost counters and
	// Faults field measure what that robustness cost. Nil (or a zero plan)
	// is exactly the clean run.
	Faults *FaultPlan
	// Metrics, when non-nil, exports live engine counters and build-phase
	// progress while the construction runs, and makes the returned Scheme
	// record per-lookup wall latency (see NewMetrics). Like Trace it is
	// observational: the scheme and Report are identical with or without
	// it.
	Metrics *Metrics
	// DataPlane, when true, compiles the built tables into the flat-array
	// forwarding data plane (see Compile) and serves Scheme.Route from it:
	// paths and weights are byte-identical, lookups are allocation-free
	// array walks instead of map-chasing. Equivalent to calling Compile
	// yourself and routing through the returned DataPlane.
	DataPlane bool
}

// Report summarises the distributed construction's cost in the CONGEST
// model: synchronous rounds, messages, and per-node memory high-water marks.
type Report struct {
	Rounds      int64
	Messages    int64
	Words       int64
	PeakMemory  int64   // max words held by any node at any time
	AvgMemory   float64 // mean per-node peak
	HopDiameter int     // the D used for broadcast accounting

	// Scheme-level quantities (Theorem 3's parameters, measured).
	MaxTableWords      int
	MaxLabelWords      int
	MaxClustersPerNode int
	HopsetEdges        int
	HopsetArboricity   int
	BetaRealised       int

	// PhaseRounds breaks Rounds down by construction phase.
	PhaseRounds map[string]int64

	// Faults aggregates what the configured fault plan did to the build;
	// zero when Config.Faults was nil.
	Faults FaultReport
}

// Path is a routed walk through the network.
type Path struct {
	Nodes  []int
	Weight float64
	// Degraded marks a packet-network delivery that was rerouted around at
	// least one crashed node: the walk is still valid, but its stretch may
	// exceed the clean 4K-3 bound. Always false for Scheme.Route paths.
	Degraded bool
}

// Hops returns the number of links crossed.
func (p Path) Hops() int { return len(p.Nodes) - 1 }

// Scheme is a compact routing scheme for a general network, built by the
// paper's low-memory distributed construction.
type Scheme struct {
	inner  *core.Scheme
	report Report
	// lookups, when non-nil (Config.Metrics was set), receives each
	// Route call's wall latency in nanoseconds.
	lookups *obs.Histogram
	// dp, when non-nil (Config.DataPlane was set), serves Route from the
	// compiled flat-array tables.
	dp *DataPlane
}

// Build runs the full distributed construction of Theorem 3 on a simulated
// CONGEST network and returns the routing scheme plus its cost report.
func Build(net *Network, cfg Config) (*Scheme, error) {
	if net == nil {
		return nil, fmt.Errorf("lowmemroute: nil network")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("lowmemroute: K=%d < 1", cfg.K)
	}
	if net.Nodes() > 1 && !net.Connected() {
		return nil, fmt.Errorf("lowmemroute: network is not connected")
	}
	simOpts := []congest.Option{congest.WithSeed(cfg.Seed)}
	if rec := cfg.Trace.recorder(); rec != nil {
		simOpts = append(simOpts, congest.WithTrace(rec))
	}
	if cfg.Faults != nil {
		simOpts = append(simOpts, congest.WithFaults(cfg.Faults.internal()))
	}
	if reg := cfg.Metrics.Registry(); reg != nil {
		simOpts = append(simOpts, congest.WithMetrics(reg))
	}
	sim := congest.New(net.g, simOpts...)
	cfg.Trace.recorder().Attach(sim)
	s, err := core.Build(sim, core.Options{
		K:       cfg.K,
		Epsilon: cfg.Epsilon,
		Seed:    cfg.Seed,
		Trace:   cfg.Trace.recorder(),
		Metrics: cfg.Metrics.Registry(),
	})
	if err != nil {
		return nil, err
	}
	var lookups *obs.Histogram
	if reg := cfg.Metrics.Registry(); reg != nil {
		reg.SetHelp(metrics.LookupHistogram, "Wall-clock latency of one Route lookup, in seconds.")
		lookups = reg.Histogram(metrics.LookupHistogram, 1e-9)
	}
	sch := &Scheme{
		inner:   s,
		lookups: lookups,
		report: Report{
			Rounds:             sim.Rounds(),
			Messages:           sim.Messages(),
			Words:              sim.Words(),
			PeakMemory:         sim.PeakMemory(),
			AvgMemory:          sim.AvgPeakMemory(),
			HopDiameter:        sim.Diameter(),
			MaxTableWords:      s.MaxTableWords(),
			MaxLabelWords:      s.MaxLabelWords(),
			MaxClustersPerNode: s.MaxClustersPerVertex(),
			HopsetEdges:        s.Stats.HopsetEdges,
			HopsetArboricity:   s.Stats.HopsetArbor,
			BetaRealised:       s.Stats.BetaRealised,
			PhaseRounds:        s.Stats.PhaseRounds,
			Faults:             publicFaultReport(sim.FaultCounters()),
		},
	}
	if cfg.DataPlane {
		dp, err := Compile(sch)
		if err != nil {
			return nil, err
		}
		sch.dp = dp
	}
	return sch, nil
}

// Route forwards a message from src to dst using only src's table, dst's
// label, and the tables of intermediate nodes - exactly the routing phase
// of the scheme. With Config.DataPlane set the walk runs over the compiled
// flat-array tables (same paths and weights, no per-hop map lookups).
func (s *Scheme) Route(src, dst int) (Path, error) {
	var began time.Time
	if s.lookups != nil {
		began = time.Now()
	}
	var nodes []int
	var w float64
	var err error
	if s.dp != nil {
		nodes, w, err = s.dp.RouteAppend(src, dst, nil)
	} else {
		nodes, w, err = s.inner.Route(src, dst)
	}
	if s.lookups != nil {
		s.lookups.Record(int64(time.Since(began)))
	}
	if err != nil {
		return Path{}, err
	}
	return Path{Nodes: nodes, Weight: w}, nil
}

// RouteAppend is Route with a caller-provided node buffer: the walked path
// is appended to nodes (reuse the buffer across queries to avoid the
// per-query path allocation). The returned slice is the grown buffer — it
// is NOT wrapped in a Path, so measurement loops can recycle it directly.
func (s *Scheme) RouteAppend(src, dst int, nodes []int) ([]int, float64, error) {
	var began time.Time
	if s.lookups != nil {
		began = time.Now()
	}
	var w float64
	var err error
	if s.dp != nil {
		nodes, w, err = s.dp.RouteAppend(src, dst, nodes)
	} else {
		nodes, w, err = s.inner.RouteAppend(src, dst, nodes)
	}
	if s.lookups != nil {
		s.lookups.Record(int64(time.Since(began)))
	}
	return nodes, w, err
}

// Report returns the construction cost report.
func (s *Scheme) Report() Report { return s.report }

// TableWords returns node v's routing table size in words.
func (s *Scheme) TableWords(v int) int { return s.inner.Tables[v].Words() }

// LabelWords returns node v's routing label size in words.
func (s *Scheme) LabelWords(v int) int { return s.inner.Labels[v].Words() }

// EncodedLabel returns node v's routing label in its compact varint wire
// encoding - the bytes a packet would carry as its destination address.
func (s *Scheme) EncodedLabel(v int) []byte { return wire.EncodeLabel(s.inner.Labels[v]) }

// EncodedTable returns node v's routing table in its compact varint wire
// encoding - the bytes the node persists as routing state.
func (s *Scheme) EncodedTable(v int) []byte { return wire.EncodeTable(s.inner.Tables[v]) }

// PacketNetwork is a live packet-forwarding overlay running the scheme:
// one goroutine per node, channels as links, packets addressed by labels.
type PacketNetwork struct {
	inner *router.Network
}

// Serve starts the scheme as a concurrent packet-forwarding network. Call
// Close when done; Send blocks until delivery and is safe for concurrent
// use. A scheme built with Config.Metrics records each delivery's
// end-to-end wall latency into the lookup-latency histogram.
func (s *Scheme) Serve() *PacketNetwork {
	net := router.New(s.inner.Scheme)
	net.ObserveLatency(s.lookups)
	return &PacketNetwork{inner: net}
}

// Send injects a packet at src addressed to dst and returns its delivery
// path. Under node crashes the path may be Degraded (rerouted around the
// failures) rather than an error; see PacketNetwork.Crash.
func (p *PacketNetwork) Send(src, dst int) (Path, error) {
	d, err := p.inner.Send(src, dst)
	if err != nil {
		return Path{}, err
	}
	return Path{Nodes: d.Path, Degraded: d.Degraded}, nil
}

// Close stops all forwarding goroutines and waits for them.
func (p *PacketNetwork) Close() { p.inner.Close() }

// TreeConfig configures BuildTree.
type TreeConfig struct {
	// Seed drives portal sampling.
	Seed int64
	// Trace, when non-nil, records per-phase spans and a per-round time
	// series during the build (see NewTracer).
	Trace *Tracer
	// Faults, when non-nil, injects a deterministic fault schedule into the
	// simulated network (see Config.Faults).
	Faults *FaultPlan
	// Metrics, when non-nil, exports live engine counters while the
	// construction runs (see NewMetrics).
	Metrics *Metrics
}

// TreeReport summarises a tree-routing construction.
type TreeReport struct {
	Rounds        int64
	Messages      int64
	PeakMemory    int64
	AvgMemory     float64
	Portals       int
	MaxTableWords int
	MaxLabelWords int
	// Faults aggregates what the configured fault plan did to the build.
	Faults FaultReport
}

// TreeScheme is an exact compact routing scheme for a tree embedded in a
// network (Theorem 2: O(1)-word tables, O(log n)-word labels, O(log n)
// construction memory, Õ(√n + D) rounds).
type TreeScheme struct {
	inner  *treeroute.Scheme
	tree   *Tree
	report TreeReport
}

// BuildTree runs the paper's distributed tree-routing construction for one
// tree embedded in the network.
func BuildTree(net *Network, tree *Tree, cfg TreeConfig) (*TreeScheme, error) {
	if net == nil || tree == nil {
		return nil, fmt.Errorf("lowmemroute: nil network or tree")
	}
	simOpts := []congest.Option{congest.WithSeed(cfg.Seed)}
	if rec := cfg.Trace.recorder(); rec != nil {
		simOpts = append(simOpts, congest.WithTrace(rec))
	}
	if cfg.Faults != nil {
		simOpts = append(simOpts, congest.WithFaults(cfg.Faults.internal()))
	}
	if reg := cfg.Metrics.Registry(); reg != nil {
		simOpts = append(simOpts, congest.WithMetrics(reg))
	}
	sim := congest.New(net.g, simOpts...)
	cfg.Trace.recorder().Attach(sim)
	res, err := treeroute.BuildDistributed(sim, []*graph.Tree{tree.t},
		treeroute.DistOptions{Seed: cfg.Seed, Trace: cfg.Trace.recorder()})
	if err != nil {
		return nil, err
	}
	return &TreeScheme{
		inner: res.Schemes[0],
		tree:  tree,
		report: TreeReport{
			Rounds:        sim.Rounds(),
			Messages:      sim.Messages(),
			PeakMemory:    sim.PeakMemory(),
			AvgMemory:     sim.AvgPeakMemory(),
			Portals:       res.Portals[0],
			MaxTableWords: res.Schemes[0].MaxTableWords(),
			MaxLabelWords: res.Schemes[0].MaxLabelWords(),
			Faults:        publicFaultReport(sim.FaultCounters()),
		},
	}, nil
}

// BuildTrees runs the distributed tree-routing construction for several
// trees of the same network in parallel (the second assertion of Theorem 2):
// with s overlapping trees, the parallel build costs Õ(√(sn) + D) rounds -
// a √s factor below building them one at a time - using O(s log n) words
// per node. The returned schemes are index-aligned with trees; the report
// covers the whole parallel construction.
func BuildTrees(net *Network, trees []*Tree, cfg TreeConfig) ([]*TreeScheme, TreeReport, error) {
	if net == nil {
		return nil, TreeReport{}, fmt.Errorf("lowmemroute: nil network")
	}
	if len(trees) == 0 {
		return nil, TreeReport{}, nil
	}
	inner := make([]*graph.Tree, len(trees))
	for i, t := range trees {
		if t == nil {
			return nil, TreeReport{}, fmt.Errorf("lowmemroute: nil tree at index %d", i)
		}
		inner[i] = t.t
	}
	simOpts := []congest.Option{congest.WithSeed(cfg.Seed)}
	if rec := cfg.Trace.recorder(); rec != nil {
		simOpts = append(simOpts, congest.WithTrace(rec))
	}
	if cfg.Faults != nil {
		simOpts = append(simOpts, congest.WithFaults(cfg.Faults.internal()))
	}
	if reg := cfg.Metrics.Registry(); reg != nil {
		simOpts = append(simOpts, congest.WithMetrics(reg))
	}
	sim := congest.New(net.g, simOpts...)
	cfg.Trace.recorder().Attach(sim)
	res, err := treeroute.BuildDistributed(sim, inner,
		treeroute.DistOptions{Seed: cfg.Seed, Trace: cfg.Trace.recorder()})
	if err != nil {
		return nil, TreeReport{}, err
	}
	rep := TreeReport{
		Rounds:     sim.Rounds(),
		Messages:   sim.Messages(),
		PeakMemory: sim.PeakMemory(),
		AvgMemory:  sim.AvgPeakMemory(),
		Faults:     publicFaultReport(sim.FaultCounters()),
	}
	out := make([]*TreeScheme, len(trees))
	for i := range trees {
		rep.Portals += res.Portals[i]
		if w := res.Schemes[i].MaxTableWords(); w > rep.MaxTableWords {
			rep.MaxTableWords = w
		}
		if w := res.Schemes[i].MaxLabelWords(); w > rep.MaxLabelWords {
			rep.MaxLabelWords = w
		}
		out[i] = &TreeScheme{inner: res.Schemes[i], tree: trees[i], report: rep}
	}
	for i := range out {
		out[i].report = rep
	}
	return out, rep, nil
}

// Route forwards a message from src to dst along the unique tree path.
func (t *TreeScheme) Route(src, dst int) (Path, error) {
	nodes, err := t.inner.Route(src, dst)
	if err != nil {
		return Path{}, err
	}
	return Path{Nodes: nodes, Weight: float64(len(nodes) - 1)}, nil
}

// RouteAppend is Route with a caller-provided node buffer: the tree path is
// appended to nodes so repeated queries allocate only on buffer growth.
func (t *TreeScheme) RouteAppend(src, dst int, nodes []int) ([]int, error) {
	return t.inner.RouteAppend(src, dst, nodes)
}

// Report returns the construction cost report.
func (t *TreeScheme) Report() TreeReport { return t.report }
