package lowmemroute_test

import (
	"fmt"

	"lowmemroute"
)

// Build a routing scheme on a small ring network and route a message.
func ExampleBuild() {
	net := lowmemroute.NewNetwork(6)
	for i := 0; i < 6; i++ {
		net.MustAddLink(i, (i+1)%6, 1.0)
	}

	scheme, err := lowmemroute.Build(net, lowmemroute.Config{K: 2, Seed: 42})
	if err != nil {
		panic(err)
	}
	path, err := scheme.Route(0, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("hops:", path.Hops(), "weight:", path.Weight)
	// Output: hops: 3 weight: 3
}

// Build the same scheme on a lossy network: a deterministic fault plan drops
// and delays messages during construction, the runtime retries the drops,
// and the finished scheme still routes. Equal seeds reproduce the exact same
// fault pattern, so the run is as repeatable as a clean one.
func ExampleBuild_faults() {
	net := lowmemroute.NewNetwork(6)
	for i := 0; i < 6; i++ {
		net.MustAddLink(i, (i+1)%6, 1.0)
	}

	scheme, err := lowmemroute.Build(net, lowmemroute.Config{
		K: 2, Seed: 42,
		Faults: &lowmemroute.FaultPlan{Seed: 1, Drop: 0.1, Delay: 1},
	})
	if err != nil {
		panic(err)
	}
	path, err := scheme.Route(0, 3)
	if err != nil {
		panic(err)
	}
	rep := scheme.Report()
	fmt.Println("hops:", path.Hops(), "weight:", path.Weight)
	fmt.Println("dropped deliveries were retried:", rep.Faults.Retried > 0)
	fmt.Println("messages lost:", rep.Faults.Lost)
	// Output:
	// hops: 3 weight: 3
	// dropped deliveries were retried: true
	// messages lost: 0
}

// Fault plans round-trip through the routebench -faults mini-language.
func ExampleParseFaultSpec() {
	plan, err := lowmemroute.ParseFaultSpec("drop=0.05,delay=2,seed=7")
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	// Output: drop=0.05,delay=2,seed=7
}

// Exact tree routing on a path embedded in the network.
func ExampleBuildTree() {
	net := lowmemroute.NewNetwork(5)
	for i := 0; i < 4; i++ {
		net.MustAddLink(i, i+1, 1.0)
	}
	tree, err := net.TreeFromParents(0, []int{-1, 0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	scheme, err := lowmemroute.BuildTree(net, tree, lowmemroute.TreeConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	path, err := scheme.Route(4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("path:", path.Nodes)
	// Output: path: [4 3 2 1]
}
