package lowmemroute_test

import (
	"fmt"

	"lowmemroute"
)

// Build a routing scheme on a small ring network and route a message.
func ExampleBuild() {
	net := lowmemroute.NewNetwork(6)
	for i := 0; i < 6; i++ {
		net.MustAddLink(i, (i+1)%6, 1.0)
	}

	scheme, err := lowmemroute.Build(net, lowmemroute.Config{K: 2, Seed: 42})
	if err != nil {
		panic(err)
	}
	path, err := scheme.Route(0, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("hops:", path.Hops(), "weight:", path.Weight)
	// Output: hops: 3 weight: 3
}

// Exact tree routing on a path embedded in the network.
func ExampleBuildTree() {
	net := lowmemroute.NewNetwork(5)
	for i := 0; i < 4; i++ {
		net.MustAddLink(i, i+1, 1.0)
	}
	tree, err := net.TreeFromParents(0, []int{-1, 0, 1, 2, 3})
	if err != nil {
		panic(err)
	}
	scheme, err := lowmemroute.BuildTree(net, tree, lowmemroute.TreeConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	path, err := scheme.Route(4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("path:", path.Nodes)
	// Output: path: [4 3 2 1]
}
