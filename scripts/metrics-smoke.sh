#!/usr/bin/env bash
# Metrics smoke test (make metrics-smoke): run a small routebench sweep with
# the diagnostics server on an ephemeral port, scrape /metrics while
# -pprof-hold keeps the process alive, and validate the exposition with
# cmd/promcheck — the format must parse as Prometheus text v0.0.4 and the
# engine counter and lookup-latency histogram families must be present.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
trap 'rm -rf "$bin"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$bin/routebench" ./cmd/routebench
go build -o "$bin/promcheck" ./cmd/promcheck

errlog="$bin/stderr.log"
"$bin/routebench" -n 64 -k 2 -pairs 50 -schemes paper \
    -pprof 127.0.0.1:0 -pprof-hold 60s >"$bin/stdout.log" 2>"$errlog" &
pid=$!

# Wait for the hold marker: the sweep is finished, so every family —
# including the lookup-latency histogram — is populated.
for _ in $(seq 1 600); do
    grep -q '^pprof: holding' "$errlog" 2>/dev/null && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metrics-smoke: routebench exited before holding" >&2
        cat "$errlog" >&2
        exit 1
    fi
    sleep 0.1
done
if ! grep -q '^pprof: holding' "$errlog"; then
    echo "metrics-smoke: timed out waiting for the sweep to finish" >&2
    cat "$errlog" >&2
    exit 1
fi

addr=$(sed -n 's|^pprof: serving http://\([^/ ]*\)/.*|\1|p' "$errlog" | head -n 1)
if [ -z "$addr" ]; then
    echo "metrics-smoke: no bound address in routebench stderr" >&2
    cat "$errlog" >&2
    exit 1
fi

curl -fsS "http://$addr/metrics" | "$bin/promcheck" \
    -require congest_rounds_total \
    -require congest_messages_total \
    -require congest_words_total \
    -require route_lookup_seconds

echo "metrics-smoke: ok (scraped http://$addr/metrics)"
