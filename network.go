package lowmemroute

import (
	"fmt"
	"math/rand"

	"lowmemroute/internal/graph"
)

// Network is a weighted undirected communication network.
type Network struct {
	g *graph.Graph
}

// NewNetwork returns a network with n isolated nodes (ids 0..n-1).
func NewNetwork(n int) *Network {
	return &Network{g: graph.New(n)}
}

// AddNode appends a node and returns its id.
func (n *Network) AddNode() int { return n.g.AddVertex() }

// AddLink inserts a bidirectional link of the given positive weight.
func (n *Network) AddLink(u, v int, weight float64) error {
	return n.g.AddEdge(u, v, weight)
}

// MustAddLink is AddLink that panics on error, for networks built from
// static, known-good descriptions.
func (n *Network) MustAddLink(u, v int, weight float64) {
	n.g.MustAddEdge(u, v, weight)
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.g.N() }

// Links returns the number of links.
func (n *Network) Links() int { return n.g.M() }

// Connected reports whether the network is connected.
func (n *Network) Connected() bool { return n.g.Connected() }

// ShortestPath returns the exact shortest-path distance between two nodes
// (for evaluating routing stretch). Unreachable pairs return +Inf.
func (n *Network) ShortestPath(u, v int) float64 {
	return n.g.Dijkstra(u).Dist[v]
}

// Family names a built-in topology generator.
type Family = graph.Family

// Built-in topology families for Generate.
const (
	ErdosRenyi Family = graph.FamilyErdosRenyi
	Geometric  Family = graph.FamilyGeometric
	Grid       Family = graph.FamilyGrid
	Torus      Family = graph.FamilyTorus
	PowerLaw   Family = graph.FamilyPowerLaw
	Hypercube  Family = graph.FamilyHypercube
)

// Generate builds a connected n-node instance of a named topology family.
func Generate(f Family, n int, seed int64) (*Network, error) {
	g, err := graph.Generate(f, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// Quantize returns a copy of the network with every link weight rounded up
// to the nearest power of (1+eps). Quantized weights fit in
// O(log log Λ + log 1/ε) bits - the paper's Section 2 adaptation to
// standard O(log n)-bit CONGEST messages - and distort any routing scheme's
// stretch by at most a (1+eps) factor.
func (n *Network) Quantize(eps float64) *Network {
	return &Network{g: n.g.QuantizeWeights(eps)}
}

// AspectRatio returns Λ, the ratio of the heaviest to the lightest link.
func (n *Network) AspectRatio() float64 { return n.g.AspectRatio() }

// Tree is a rooted tree embedded in a network: every tree edge must be a
// network link.
type Tree struct {
	t *graph.Tree
}

// Root returns the tree root.
func (t *Tree) Root() int { return t.t.Root }

// Size returns the number of tree members.
func (t *Tree) Size() int { return t.t.Size() }

// Height returns the tree height in edges.
func (t *Tree) Height() int { return t.t.Height() }

// Member reports whether node v belongs to the tree.
func (t *Tree) Member(v int) bool { return t.t.Member(v) }

// Parent returns v's tree parent, or -1 for the root and non-members.
func (t *Tree) Parent(v int) int { return t.t.Parent(v) }

// SpanningTree extracts a spanning tree of a connected network. kind is
// "bfs" (shallow), "sssp" (shortest-path tree) or "dfs" (deep - the regime
// where the paper's tree routing shines, since its round complexity depends
// on the network diameter rather than the tree height).
func (n *Network) SpanningTree(root int, kind string, seed int64) (*Tree, error) {
	t, err := graph.SpanningTree(n.g, root, kind, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &Tree{t: t}, nil
}

// TreeFromParents builds a tree from explicit parent pointers: parents[v]
// is v's parent, -1 for the root and for nodes outside the tree. Every
// (child, parent) pair must be a network link.
func (n *Network) TreeFromParents(root int, parents []int) (*Tree, error) {
	if len(parents) != n.g.N() {
		return nil, fmt.Errorf("lowmemroute: parents length %d != nodes %d", len(parents), n.g.N())
	}
	t, err := graph.NewTree(root, parents)
	if err != nil {
		return nil, err
	}
	for _, v := range t.Members() {
		if p := t.Parent(v); p != graph.NoVertex && !n.g.HasEdge(v, p) {
			return nil, fmt.Errorf("lowmemroute: tree edge {%d,%d} is not a network link", v, p)
		}
	}
	return &Tree{t: t}, nil
}
