package lowmemroute

import (
	"io"
	"time"

	"lowmemroute/internal/metrics"
	"lowmemroute/internal/obs"
)

// Metrics is a live metrics registry: attach one via Config.Metrics /
// TreeConfig.Metrics and the simulated construction exports throughput
// counters and level gauges while it runs; Scheme.Route and PacketNetwork
// deliveries record per-lookup wall latency into histograms. Like the
// Tracer it is strictly observational — a build produces bit-identical
// schemes and reports with or without one — and a nil *Metrics is valid
// everywhere, disabling recording at no cost.
//
// Expose the registry over HTTP (Prometheus text format) by passing it to
// the CLIs' -pprof server, or scrape it in-process with WritePrometheus.
// One registry may serve several builds; counters accumulate across them.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics returns an empty registry ready to be passed to Build,
// BuildTree, or BuildTrees.
func NewMetrics() *Metrics { return &Metrics{reg: obs.NewRegistry()} }

// WritePrometheus renders the registry in Prometheus text exposition
// format v0.0.4.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	return m.reg.WritePrometheus(w)
}

// LatencySummary condenses a latency histogram: observation count and
// exact-rank percentiles (upper bucket edges, ≤3.2% quantization error,
// exact at the max).
type LatencySummary struct {
	Count int64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// LookupLatency summarises the per-lookup wall latencies recorded so far
// (Scheme.Route calls and packet-network deliveries). Zero until the first
// instrumented lookup.
func (m *Metrics) LookupLatency() LatencySummary {
	if m == nil {
		return LatencySummary{}
	}
	s := m.reg.Histogram(metrics.LookupHistogram, 1e-9).Snapshot()
	return LatencySummary{
		Count: s.Count,
		P50:   time.Duration(s.Quantile(0.5)),
		P90:   time.Duration(s.Quantile(0.9)),
		P99:   time.Duration(s.Quantile(0.99)),
		P999:  time.Duration(s.Quantile(0.999)),
		Max:   time.Duration(s.Max),
	}
}

// Registry returns the underlying obs registry (nil for a nil Metrics).
// It exists so the module's CLIs can hand the registry to the -pprof debug
// server and the progress reporter; the return type lives in an internal
// package, so code outside this module cannot name it.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}
